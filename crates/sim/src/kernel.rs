//! The simulation kernel: agents, links, streams and the dispatch loop.
//!
//! Agents are stored as boxed trait objects and addressed by [`AgentId`].
//! During dispatch the target agent is *taken out* of its slot, so the
//! handler gets `&mut self` while the rest of the world is reachable
//! through [`Ctx`]. Operations that would touch the agent table itself
//! (spawning a VM, killing a failed switch) are buffered and applied
//! between events; everything else takes effect immediately.

use crate::link::{FaultOutcome, LinkProfile};
use crate::queue::EventQueue;
use crate::time::Time;
use crate::trace::{KernelCounter, TraceLevel, Tracer};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Identifies an agent within one [`Sim`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AgentId(pub usize);

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent#{}", self.0)
    }
}

/// Identifies a reliable stream connection.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConnId(pub usize);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// Identifies a packet link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub usize);

/// Sentinel for an unwired port-table slot (see [`Inner::ports`]).
const NO_LINK: u32 = u32::MAX;

/// Events delivered to an agent about one of its stream connections.
#[derive(Clone, Debug)]
pub enum StreamEvent {
    /// The connection is established and may carry data.
    Opened {
        peer: AgentId,
        service: u16,
        /// True on the side that called [`Ctx::connect`].
        initiated_by_us: bool,
    },
    /// In-order payload bytes (framing is up to the application).
    Data(Bytes),
    /// The peer closed, refused, or died.
    Closed,
}

/// Properties of a stream connection (a TCP model).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConnProfile {
    /// One-way latency applied to every chunk (and to the handshake).
    pub latency: Duration,
}

impl Default for ConnProfile {
    fn default() -> Self {
        ConnProfile {
            latency: Duration::from_millis(1),
        }
    }
}

/// Object-safe cloning for boxed agents. Implemented automatically for
/// every `Agent + Clone` type via the blanket impl below, so agent
/// authors only write `#[derive(Clone)]` — the trait itself is an
/// implementation detail of `Box<dyn Agent>: Clone`, which is what
/// makes a whole [`Sim`] deep-copyable for checkpoint/fork.
pub trait CloneAgent {
    fn clone_agent(&self) -> Box<dyn Agent>;
}

impl<T> CloneAgent for T
where
    T: 'static + Agent + Clone,
{
    fn clone_agent(&self) -> Box<dyn Agent> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Agent> {
    fn clone(&self) -> Self {
        self.clone_agent()
    }
}

/// Behaviour of a simulated network element.
///
/// All methods have empty defaults so implementations only override the
/// events they care about. The `Any` supertrait allows test code to
/// downcast agents back to their concrete types via [`Sim::agent_as`].
/// The `Send` supertrait makes a fully assembled [`Sim`] movable across
/// threads, which is what lets scenario sweeps fan independent
/// simulations out over worker threads. The [`CloneAgent`] supertrait
/// (satisfied by deriving `Clone`) makes the assembled [`Sim`] deep
/// *clonable* too — the substrate of converged-state checkpoint/fork.
#[allow(unused_variables)]
pub trait Agent: Any + Send + CloneAgent {
    /// Called once, when the agent enters the simulation.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {}
    /// A timer scheduled via [`Ctx::schedule`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {}
    /// An Ethernet frame arrived on `port`.
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: u32, frame: Bytes) {}
    /// A stream connection event.
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, event: StreamEvent) {}
}

/// Global simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for the simulation's single RNG.
    pub seed: u64,
    /// Trace verbosity.
    pub trace_level: TraceLevel,
    /// Hard stop: `run` never advances past this time.
    pub max_time: Option<Time>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            trace_level: TraceLevel::Info,
            max_time: None,
        }
    }
}

#[derive(Clone, Debug)]
pub(crate) enum Ev {
    Start(AgentId),
    Timer {
        agent: AgentId,
        token: u64,
    },
    Frame {
        agent: AgentId,
        port: u32,
        frame: Bytes,
    },
    StreamOpen {
        conn: ConnId,
        to: AgentId,
    },
    StreamData {
        conn: ConnId,
        to: AgentId,
        data: Bytes,
    },
    StreamClosed {
        conn: ConnId,
        to: AgentId,
    },
}

/// The agent an event will be delivered to. Every kernel event targets
/// exactly one agent — the invariant the parallel kernel's region
/// routing is built on.
pub(crate) fn ev_target(ev: &Ev) -> AgentId {
    match ev {
        Ev::Start(a) => *a,
        Ev::Timer { agent, .. } | Ev::Frame { agent, .. } => *agent,
        Ev::StreamOpen { to, .. } | Ev::StreamData { to, .. } | Ev::StreamClosed { to, .. } => *to,
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct LinkEnd {
    pub(crate) agent: AgentId,
    pub(crate) port: u32,
}

#[derive(Clone)]
pub(crate) struct LinkState {
    pub(crate) a: LinkEnd,
    pub(crate) b: LinkEnd,
    pub(crate) profile: LinkProfile,
    pub(crate) up: bool,
    /// Transmitter-busy horizon for each direction (a→b, b→a).
    pub(crate) busy: [Time; 2],
    pub(crate) removed: bool,
}

#[derive(Clone)]
pub(crate) struct ConnState {
    pub(crate) ends: [AgentId; 2],
    pub(crate) service: u16,
    pub(crate) profile: ConnProfile,
    /// Per-direction in-order delivery clocks (index = sender side).
    pub(crate) deliver_clock: [Time; 2],
    pub(crate) closed: bool,
}

/// What a region replica records for every event push while a parallel
/// window executes (see the `partition` module).
#[derive(Clone, Debug)]
pub(crate) enum PushRec {
    /// The event targets an agent this region owns; it was inserted
    /// into the local queue under a *provisional* sequence number,
    /// finalized at the next barrier.
    Local { prov_seq: u64 },
    /// The event targets a foreign region; it was *not* inserted
    /// locally — the barrier routes it under its finalized sequence
    /// number.
    Cross { at: Time, ev: Ev },
}

/// Parallel-execution control block, installed on a region replica's
/// [`Inner`] while the `partition` module drives it through conservative
/// windows. When present, every ordinary event push is routed through
/// it, and kernel operations the windowed protocol cannot replicate
/// safely (topology mutation, agent churn, shared-RNG access, …) mark a
/// violation instead of being trusted — the coordinator then discards
/// the replicas and reruns the span on the sequential kernel.
#[derive(Clone)]
pub(crate) struct ParCtl {
    /// The region this replica owns.
    pub(crate) my_region: u32,
    /// Region of every agent id (index = `AgentId.0`).
    pub(crate) region_of: Vec<u32>,
    /// Push log of the event currently dispatching; drained into the
    /// dispatch record after each event.
    pub(crate) pushes: Vec<PushRec>,
    /// First operation this window that the protocol cannot replicate.
    pub(crate) violation: Option<&'static str>,
}

/// Everything in the simulation except the agent table; [`Ctx`] borrows
/// this during dispatch.
#[derive(Clone)]
pub(crate) struct Inner {
    pub(crate) now: Time,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) links: Vec<LinkState>,
    /// Dense per-agent port tables: `ports[agent][port]` is the link
    /// wired there, or [`NO_LINK`] for an empty port. Built at wiring
    /// time, so the per-send lookup is two indexed loads instead of a
    /// `HashMap` probe. Stored as `u32` rather than `Option<LinkId>`
    /// (16 bytes per slot): at fat-tree scale a corpus cell carries
    /// thousands of agents × tens of ports, and these rows dominate
    /// the kernel's resident wiring state.
    ports: Vec<Vec<u32>>,
    pub(crate) conns: Vec<ConnState>,
    listeners: HashMap<(AgentId, u16), bool>,
    pub(crate) rng: StdRng,
    pub(crate) tracer: Tracer,
    names: Vec<String>,
    pub(crate) next_agent: usize,
    pub(crate) pending_spawn: Vec<(AgentId, Box<dyn Agent>)>,
    pub(crate) pending_kill: Vec<AgentId>,
    /// Agents to re-install into previously killed slots (chaos
    /// revive): the id keeps its wiring — links stay attached to the
    /// slot — and the fresh agent's `on_start` re-runs its boot path.
    pub(crate) pending_revive: Vec<(AgentId, Box<dyn Agent>)>,
    pub(crate) stopped: bool,
    /// Parallel-window control block; `None` on the sequential path
    /// (always, except while the `partition` module drives a replica).
    pub(crate) par: Option<Box<ParCtl>>,
}

impl Inner {
    /// Route an ordinary event push. On the sequential path this is
    /// exactly `queue.push`; while a parallel window executes, the
    /// push is logged — and cross-region events are withheld from the
    /// local queue entirely (the barrier delivers them).
    fn push_ev(&mut self, at: Time, ev: Ev) {
        let Some(par) = self.par.as_deref_mut() else {
            self.queue.push(at, ev);
            return;
        };
        let target = ev_target(&ev);
        let region = par.region_of.get(target.0).copied().unwrap_or(0);
        if region == par.my_region {
            let prov_seq = self.queue.push_seq(at, ev);
            par.pushes.push(PushRec::Local { prov_seq });
        } else {
            par.pushes.push(PushRec::Cross { at, ev });
        }
    }

    /// Record that the current event performed an operation the
    /// parallel-window protocol cannot replicate. No-op on the
    /// sequential path; under a window it poisons the whole parallel
    /// attempt (the span reruns sequentially from the pristine world),
    /// so the operation itself may proceed on the doomed replica.
    fn mark_violation(&mut self, what: &'static str) {
        if let Some(par) = self.par.as_deref_mut() {
            if par.violation.is_none() {
                par.violation = Some(what);
            }
        }
    }
    #[inline]
    fn link_of(&self, end: LinkEnd) -> Option<LinkId> {
        let raw = *self.ports.get(end.agent.0)?.get(end.port as usize)?;
        (raw != NO_LINK).then_some(LinkId(raw as usize))
    }

    /// Port-table slot for `end`, growing the tables as needed. The
    /// slot holds a raw link index, [`NO_LINK`] when the port is free.
    fn port_slot(&mut self, end: LinkEnd) -> &mut u32 {
        // The table is dense in the port number; an absurd port would
        // allocate proportionally. Real switches here have tens of
        // ports — catch typos (e.g. a dpid passed as a port) loudly.
        assert!(
            end.port < 4096,
            "port {} on {} out of range for the dense port table",
            end.port,
            end.agent
        );
        if self.ports.len() <= end.agent.0 {
            self.ports.resize_with(end.agent.0 + 1, Vec::new);
        }
        let row = &mut self.ports[end.agent.0];
        if row.len() <= end.port as usize {
            row.resize(end.port as usize + 1, NO_LINK);
        }
        &mut row[end.port as usize]
    }

    fn name(&self, id: AgentId) -> &str {
        self.names.get(id.0).map(|s| s.as_str()).unwrap_or("?")
    }

    fn emit(&mut self, level: TraceLevel, source: AgentId, kind: &str, detail: String) {
        // Same filter the tracer applies — checked here first so a
        // filtered event never pays for the source-name copy.
        if level == TraceLevel::Off || level > self.tracer.level() {
            return;
        }
        let src = self.name(source).to_string();
        self.tracer.emit(self.now, level, &src, kind, detail);
    }

    fn send_frame_from(&mut self, from: AgentId, port: u32, frame: Bytes) {
        let end = LinkEnd { agent: from, port };
        let Some(lid) = self.link_of(end) else {
            self.tracer.count_kernel(KernelCounter::TxNoLink, 1);
            return;
        };
        let (other, dir, profile, up, removed) = {
            let l = &self.links[lid.0];
            let dir = if l.a == end { 0 } else { 1 };
            let other = if dir == 0 { l.b } else { l.a };
            (other, dir, l.profile, l.up, l.removed)
        };
        if !up || removed {
            self.tracer.count_kernel(KernelCounter::TxDown, 1);
            return;
        }
        let ser = profile.serialization_delay(frame.len());
        let start = self.now.max(self.links[lid.0].busy[dir]);
        let done = start + ser;
        self.links[lid.0].busy[dir] = done;
        let arrival = done + profile.latency;
        self.tracer.count_kernel(KernelCounter::TxFrames, 1);
        self.tracer
            .count_kernel(KernelCounter::TxBytes, frame.len() as u64);
        match profile.faults.apply(&mut self.rng, &frame) {
            FaultOutcome::Dropped => {
                self.tracer.count_kernel(KernelCounter::Dropped, 1);
            }
            FaultOutcome::Deliver { frame, duplicate } => {
                // Clone only when a duplicate must actually be queued;
                // the common single-delivery path moves the frame.
                let dup = duplicate.then(|| frame.clone());
                self.push_ev(
                    arrival,
                    Ev::Frame {
                        agent: other.agent,
                        port: other.port,
                        frame,
                    },
                );
                if let Some(frame) = dup {
                    self.tracer.count_kernel(KernelCounter::Duplicated, 1);
                    self.push_ev(
                        arrival,
                        Ev::Frame {
                            agent: other.agent,
                            port: other.port,
                            frame,
                        },
                    );
                }
            }
        }
    }

    fn connect_from(
        &mut self,
        from: AgentId,
        peer: AgentId,
        service: u16,
        profile: ConnProfile,
    ) -> ConnId {
        // Grows the connection table, which region replicas share by
        // index — and the new conn's endpoints may span regions.
        self.mark_violation("connect");
        let conn = ConnId(self.conns.len());
        let listening = self
            .listeners
            .get(&(peer, service))
            .copied()
            .unwrap_or(false);
        let lat = profile.latency;
        let open_peer = self.now + lat;
        let open_init = self.now + lat + lat;
        self.conns.push(ConnState {
            ends: [from, peer],
            service,
            profile,
            deliver_clock: [open_peer, open_init],
            closed: !listening,
        });
        if listening {
            self.push_ev(open_peer, Ev::StreamOpen { conn, to: peer });
            self.push_ev(open_init, Ev::StreamOpen { conn, to: from });
            self.tracer.count_kernel(KernelCounter::ConnOpened, 1);
        } else {
            // Connection refused: initiator learns after one round trip.
            self.push_ev(open_init, Ev::StreamClosed { conn, to: from });
            self.tracer.count_kernel(KernelCounter::ConnRefused, 1);
        }
        conn
    }

    fn conn_send_from(&mut self, from: AgentId, conn: ConnId, data: Bytes) {
        let Some(c) = self.conns.get_mut(conn.0) else {
            return;
        };
        if c.closed {
            self.tracer.count_kernel(KernelCounter::ConnTxClosed, 1);
            return;
        }
        let side = if c.ends[0] == from {
            0
        } else if c.ends[1] == from {
            1
        } else {
            return;
        };
        let to = c.ends[1 - side];
        let deliver = (self.now + c.profile.latency).max(c.deliver_clock[side]);
        c.deliver_clock[side] = deliver;
        self.tracer
            .count_kernel(KernelCounter::ConnTxBytes, data.len() as u64);
        self.push_ev(deliver, Ev::StreamData { conn, to, data });
    }

    fn conn_close_from(&mut self, from: AgentId, conn: ConnId) {
        // Flips `closed`, which both endpoint regions read.
        self.mark_violation("conn_close");
        let Some(c) = self.conns.get_mut(conn.0) else {
            return;
        };
        if c.closed {
            return;
        }
        c.closed = true;
        let side = if c.ends[0] == from { 0 } else { 1 };
        let to = c.ends[1 - side];
        let deliver = (self.now + c.profile.latency).max(c.deliver_clock[side]);
        self.push_ev(deliver, Ev::StreamClosed { conn, to });
    }

    fn add_link(&mut self, a: (AgentId, u32), b: (AgentId, u32), profile: LinkProfile) -> LinkId {
        // Topology mutation invalidates the partition plan (regions and
        // the lookahead bound were cut from the link graph).
        self.mark_violation("add_link");
        let a = LinkEnd {
            agent: a.0,
            port: a.1,
        };
        let b = LinkEnd {
            agent: b.0,
            port: b.1,
        };
        assert!(
            self.link_of(a).is_none(),
            "port {}:{} already linked",
            a.agent,
            a.port
        );
        assert!(
            self.link_of(b).is_none(),
            "port {}:{} already linked",
            b.agent,
            b.port
        );
        let id = LinkId(self.links.len());
        assert!(
            id.0 < NO_LINK as usize,
            "link table exceeded the u32 port-slot encoding"
        );
        *self.port_slot(a) = id.0 as u32;
        *self.port_slot(b) = id.0 as u32;
        self.links.push(LinkState {
            a,
            b,
            profile,
            up: true,
            busy: [Time::ZERO; 2],
            removed: false,
        });
        id
    }

    fn remove_link(&mut self, id: LinkId) {
        self.mark_violation("remove_link");
        if let Some(l) = self.links.get_mut(id.0) {
            if !l.removed {
                l.removed = true;
                l.up = false;
                let (a, b) = (l.a, l.b);
                *self.port_slot(a) = NO_LINK;
                *self.port_slot(b) = NO_LINK;
            }
        }
    }

    fn set_link_loss(&mut self, id: LinkId, pct: f64) {
        // Lossy links draw from the shared RNG per frame — a stream the
        // windowed protocol cannot serialize across regions.
        self.mark_violation("set_link_loss");
        if let Some(l) = self.links.get_mut(id.0) {
            if !l.removed {
                l.profile.faults.drop_chance = (pct / 100.0).clamp(0.0, 1.0);
            }
        }
    }

    fn spawn(&mut self, name: &str, agent: Box<dyn Agent>) -> AgentId {
        // Agent-table growth: the new id has no region assignment.
        self.mark_violation("spawn");
        let id = AgentId(self.next_agent);
        self.next_agent += 1;
        while self.names.len() <= id.0 {
            self.names.push(String::new());
        }
        self.names[id.0] = name.to_string();
        self.pending_spawn.push((id, agent));
        let now = self.now;
        self.push_ev(now, Ev::Start(id));
        id
    }
}

/// The handle an agent uses to interact with the world during an event.
pub struct Ctx<'a> {
    pub(crate) inner: &'a mut Inner,
    id: AgentId,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.inner.now
    }

    /// This agent's own id.
    pub fn self_id(&self) -> AgentId {
        self.id
    }

    /// This agent's registered name.
    pub fn self_name(&self) -> &str {
        self.inner.name(self.id)
    }

    /// Fire `on_timer(token)` after `delay`.
    pub fn schedule(&mut self, delay: Duration, token: u64) {
        let at = self.inner.now + delay;
        self.inner.push_ev(
            at,
            Ev::Timer {
                agent: self.id,
                token,
            },
        );
    }

    /// Fire `on_timer(token)` after `delay`, in the event queue's
    /// *reserved* lane: the timer dispatches before every ordinarily
    /// scheduled event at the same instant, and reserved timers order
    /// among themselves by scheduling order — independent of *when*
    /// they were scheduled. Harness-level injectors (fault schedules
    /// that must order identically whether armed at t=0 or injected
    /// into a forked simulation mid-run) use this; protocol agents
    /// should use [`schedule`](Self::schedule).
    pub fn schedule_reserved(&mut self, delay: Duration, token: u64) {
        // Reserved-lane entries bypass the provisional numbering the
        // window protocol finalizes at barriers.
        self.inner.mark_violation("schedule_reserved");
        let at = self.inner.now + delay;
        self.inner.queue.push_reserved(
            at,
            Ev::Timer {
                agent: self.id,
                token,
            },
        );
    }

    /// Fire `on_timer(token)` at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: Time, token: u64) {
        let at = at.max(self.inner.now);
        self.inner.push_ev(
            at,
            Ev::Timer {
                agent: self.id,
                token,
            },
        );
    }

    /// Transmit an Ethernet frame out of `port`.
    pub fn send_frame(&mut self, port: u32, frame: Bytes) {
        self.inner.send_frame_from(self.id, port, frame);
    }

    /// Open a stream connection to `peer:service`. The returned id is
    /// valid immediately; `Opened` (or `Closed` on refusal) arrives
    /// after the handshake latency.
    pub fn connect(&mut self, peer: AgentId, service: u16, profile: ConnProfile) -> ConnId {
        self.inner.connect_from(self.id, peer, service, profile)
    }

    /// Accept incoming connections on `service`.
    pub fn listen(&mut self, service: u16) {
        // The listener table is frozen shared state under a window.
        self.inner.mark_violation("listen");
        self.inner.listeners.insert((self.id, service), true);
    }

    /// Send bytes on an open connection.
    pub fn conn_send(&mut self, conn: ConnId, data: Bytes) {
        self.inner.conn_send_from(self.id, conn, data);
    }

    /// Close a connection; the peer receives `Closed`.
    pub fn conn_close(&mut self, conn: ConnId) {
        self.inner.conn_close_from(self.id, conn);
    }

    /// Add a new agent to the running simulation (e.g. a VM being
    /// created by the RPC server). Its `on_start` runs at the current
    /// time, after the current event completes.
    pub fn spawn(&mut self, name: &str, agent: Box<dyn Agent>) -> AgentId {
        self.inner.spawn(name, agent)
    }

    /// Remove an agent after the current event (its links stay but
    /// frames to it are dropped, and its connections are closed).
    pub fn kill(&mut self, agent: AgentId) {
        // Agent-table mutation; the victim may live in another region.
        self.inner.mark_violation("kill");
        self.inner.pending_kill.push(agent);
    }

    /// Re-install `fresh` into a previously [`kill`](Self::kill)ed
    /// agent slot after the current event. The id keeps its name and
    /// its wiring — links are still attached to the slot's ports — so
    /// the fresh agent boots (its `on_start` fires at the current
    /// time) into the dead agent's place in the topology. Reviving a
    /// *live* slot is a forced reboot: the resident agent is torn down
    /// exactly like a kill (connections closed, listeners dropped)
    /// before the fresh one is installed.
    pub fn revive(&mut self, agent: AgentId, fresh: Box<dyn Agent>) {
        // Agent-table mutation, same as kill/spawn.
        self.inner.mark_violation("revive");
        self.inner.pending_revive.push((agent, fresh));
        let now = self.inner.now;
        self.inner.push_ev(now, Ev::Start(agent));
    }

    /// Create a packet link between two `(agent, port)` endpoints.
    pub fn add_link(
        &mut self,
        a: (AgentId, u32),
        b: (AgentId, u32),
        profile: LinkProfile,
    ) -> LinkId {
        self.inner.add_link(a, b, profile)
    }

    /// Detach a link permanently, freeing both ports.
    pub fn remove_link(&mut self, id: LinkId) {
        self.inner.remove_link(id);
    }

    /// Administratively set a link up or down.
    pub fn set_link_up(&mut self, id: LinkId, up: bool) {
        // The link's `up` flag is read by the owning endpoint regions.
        self.inner.mark_violation("set_link_up");
        if let Some(l) = self.inner.links.get_mut(id.0) {
            if !l.removed {
                l.up = up;
            }
        }
    }

    /// Set a link's per-frame drop probability (both directions) —
    /// sustained-loss fault injection at run time. `pct` is a
    /// percentage; 0 restores a clean link.
    pub fn set_link_loss(&mut self, id: LinkId, pct: f64) {
        self.inner.set_link_loss(id, pct);
    }

    /// Deterministic RNG shared by the whole simulation.
    pub fn rng(&mut self) -> &mut StdRng {
        // One RNG, one draw order: regions cannot interleave draws the
        // way the sequential kernel would.
        self.inner.mark_violation("rng");
        &mut self.inner.rng
    }

    /// Emit an info-level trace event attributed to this agent.
    pub fn trace(&mut self, kind: &str, detail: impl Into<String>) {
        self.inner
            .emit(TraceLevel::Info, self.id, kind, detail.into());
    }

    /// Emit a debug-level trace event attributed to this agent.
    pub fn trace_debug(&mut self, kind: &str, detail: impl Into<String>) {
        self.inner
            .emit(TraceLevel::Debug, self.id, kind, detail.into());
    }

    /// Increment a named metric counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        self.inner.tracer.count(name, delta);
    }

    /// Stop the simulation after the current event.
    pub fn stop_sim(&mut self) {
        // A global halt must be observed by every region at once.
        self.inner.mark_violation("stop_sim");
        self.inner.stopped = true;
    }
}

/// A complete simulation instance.
///
/// `Clone` is a *deep copy*: the agent table (via [`CloneAgent`]), the
/// event queue with its exact `(time, seq)` order and sequence counter,
/// link/port/connection state, the RNG mid-stream, and the tracer all
/// duplicate, so the copy replays byte-identically to the original.
#[derive(Clone)]
pub struct Sim {
    pub(crate) agents: Vec<Option<Box<dyn Agent>>>,
    pub(crate) inner: Inner,
    pub(crate) cfg: SimConfig,
    /// Events dispatched so far (the perf harness's events/sec basis).
    pub(crate) events_dispatched: u64,
}

impl Sim {
    pub fn new(cfg: SimConfig) -> Self {
        Sim {
            agents: Vec::new(),
            inner: Inner {
                now: Time::ZERO,
                queue: EventQueue::new(),
                links: Vec::new(),
                ports: Vec::new(),
                conns: Vec::new(),
                listeners: HashMap::new(),
                rng: StdRng::seed_from_u64(cfg.seed),
                tracer: Tracer::new(cfg.trace_level),
                names: Vec::new(),
                next_agent: 0,
                pending_spawn: Vec::new(),
                pending_kill: Vec::new(),
                pending_revive: Vec::new(),
                stopped: false,
                par: None,
            },
            cfg,
            events_dispatched: 0,
        }
    }

    /// Register an agent before (or during) the run; `on_start` fires at
    /// the current simulation time.
    pub fn add_agent(&mut self, name: &str, agent: Box<dyn Agent>) -> AgentId {
        let id = self.inner.spawn(name, agent);
        self.apply_pending();
        id
    }

    /// Create a link between two `(agent, port)` endpoints.
    pub fn add_link(
        &mut self,
        a: (AgentId, u32),
        b: (AgentId, u32),
        profile: LinkProfile,
    ) -> LinkId {
        self.inner.add_link(a, b, profile)
    }

    /// Administratively set a link up or down.
    pub fn set_link_up(&mut self, id: LinkId, up: bool) {
        if let Some(l) = self.inner.links.get_mut(id.0) {
            if !l.removed {
                l.up = up;
            }
        }
    }

    /// Set a link's per-frame drop probability (percentage, both
    /// directions); 0 restores a clean link.
    pub fn set_link_loss(&mut self, id: LinkId, pct: f64) {
        self.inner.set_link_loss(id, pct);
    }

    /// Schedule a timer for `agent` from outside the simulation — the
    /// hook a harness uses to poke an agent's housekeeping (e.g. "flush
    /// buffered output before I harvest metrics") without waiting for
    /// the agent's own cadence. Delivered through the ordinary event
    /// queue, so determinism is untouched.
    pub fn schedule_timer(&mut self, agent: AgentId, delay: Duration, token: u64) {
        let at = self.inner.now + delay;
        self.inner.queue.push(at, Ev::Timer { agent, token });
    }

    /// Like [`schedule_timer`](Self::schedule_timer), but in the event
    /// queue's reserved lane (see [`Ctx::schedule_reserved`]): the
    /// timer dispatches before every ordinarily scheduled event at the
    /// same instant, ordered among reserved timers by scheduling order.
    /// This is the fork-side fault-injection hook — a fault timer
    /// injected into a cloned simulation lands in exactly the dispatch
    /// position it would have had if armed at t=0 in a cold run.
    pub fn schedule_timer_reserved(&mut self, agent: AgentId, delay: Duration, token: u64) {
        let at = self.inner.now + delay;
        self.inner
            .queue
            .push_reserved(at, Ev::Timer { agent, token });
    }

    pub fn now(&self) -> Time {
        self.inner.now
    }

    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.inner.tracer
    }

    /// Borrow an agent by concrete type (returns `None` on wrong type or
    /// dead agent). Intended for test assertions and result harvesting.
    pub fn agent_as<T: Agent>(&self, id: AgentId) -> Option<&T> {
        let boxed = self.agents.get(id.0)?.as_ref()?;
        (boxed.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable variant of [`Sim::agent_as`].
    pub fn agent_as_mut<T: Agent>(&mut self, id: AgentId) -> Option<&mut T> {
        let boxed = self.agents.get_mut(id.0)?.as_mut()?;
        (boxed.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Name of an agent.
    pub fn agent_name(&self, id: AgentId) -> &str {
        self.inner.name(id)
    }

    /// Number of live agents.
    pub fn live_agents(&self) -> usize {
        self.agents.iter().filter(|a| a.is_some()).count()
    }

    pub(crate) fn apply_pending(&mut self) {
        // Runs after every event; almost always a no-op.
        if self.inner.pending_spawn.is_empty()
            && self.inner.pending_kill.is_empty()
            && self.inner.pending_revive.is_empty()
        {
            return;
        }
        for (id, agent) in self.inner.pending_spawn.drain(..) {
            while self.agents.len() <= id.0 {
                self.agents.push(None);
            }
            self.agents[id.0] = Some(agent);
        }
        let mut kills: Vec<AgentId> = self.inner.pending_kill.drain(..).collect();
        // A revive of a live slot is a forced reboot: tear the resident
        // agent down like a kill before installing the fresh one.
        let revives: Vec<(AgentId, Box<dyn Agent>)> = self.inner.pending_revive.drain(..).collect();
        for (id, _) in &revives {
            if self.agents.get(id.0).is_some_and(|s| s.is_some()) {
                kills.push(*id);
            }
        }
        let mut close_pushes: Vec<(Time, Ev)> = Vec::new();
        for id in kills {
            if self.agents.get_mut(id.0).and_then(|s| s.take()).is_some() {
                // Close this agent's connections so peers observe dead sockets.
                for (cid, c) in self.inner.conns.iter_mut().enumerate() {
                    if !c.closed && (c.ends[0] == id || c.ends[1] == id) {
                        c.closed = true;
                        let to = if c.ends[0] == id {
                            c.ends[1]
                        } else {
                            c.ends[0]
                        };
                        let at = self.inner.now + c.profile.latency;
                        close_pushes.push((
                            at,
                            Ev::StreamClosed {
                                conn: ConnId(cid),
                                to,
                            },
                        ));
                    }
                }
                // Drop its listeners.
                self.inner.listeners.retain(|(a, _), _| *a != id);
            }
        }
        for (id, agent) in revives {
            assert!(
                id.0 < self.inner.next_agent,
                "revive of never-allocated agent {id}"
            );
            while self.agents.len() <= id.0 {
                self.agents.push(None);
            }
            self.agents[id.0] = Some(agent);
        }
        // Pushed outside the conns borrow; kills only happen under a
        // window on an already-poisoned replica, so routing through
        // push_ev keeps the log shape consistent either way.
        for (at, ev) in close_pushes {
            self.inner.push_ev(at, ev);
        }
    }

    /// Dispatch a single event. Returns `false` when the queue is
    /// exhausted, the stop flag is set, or `max_time` would be exceeded.
    pub fn step(&mut self) -> bool {
        if self.inner.stopped {
            return false;
        }
        let Some(peek) = self.inner.queue.peek_time() else {
            return false;
        };
        if let Some(max) = self.cfg.max_time {
            if peek > max {
                self.inner.now = max;
                return false;
            }
        }
        let (at, ev) = self.inner.queue.pop().expect("peeked");
        self.inner.now = at;
        self.events_dispatched += 1;
        self.dispatch(ev);
        self.apply_pending();
        true
    }

    pub(crate) fn dispatch(&mut self, ev: Ev) {
        // Resolve the target (and, for stream opens, the connection
        // metadata) before taking the agent out of its slot, so every
        // early return leaves the table intact. Handlers are invoked
        // directly from the match — no per-event closure allocation.
        let target = ev_target(&ev);
        let open_info = if let Ev::StreamOpen { conn, to } = &ev {
            let Some(c) = self.inner.conns.get(conn.0) else {
                return;
            };
            let initiated = c.ends[0] == *to;
            let peer = if initiated { c.ends[1] } else { c.ends[0] };
            Some((peer, c.service, initiated))
        } else {
            None
        };
        let Some(slot) = self.agents.get_mut(target.0) else {
            return;
        };
        let Some(mut agent) = slot.take() else {
            // Agent was killed; drop the event silently.
            return;
        };
        let mut ctx = Ctx {
            inner: &mut self.inner,
            id: target,
        };
        match ev {
            Ev::Start(_) => agent.on_start(&mut ctx),
            Ev::Timer { token, .. } => agent.on_timer(&mut ctx, token),
            Ev::Frame { port, frame, .. } => agent.on_frame(&mut ctx, port, frame),
            Ev::StreamOpen { conn, .. } => {
                let (peer, service, initiated_by_us) = open_info.expect("resolved above");
                agent.on_stream(
                    &mut ctx,
                    conn,
                    StreamEvent::Opened {
                        peer,
                        service,
                        initiated_by_us,
                    },
                )
            }
            Ev::StreamData { conn, data, .. } => {
                agent.on_stream(&mut ctx, conn, StreamEvent::Data(data))
            }
            Ev::StreamClosed { conn, .. } => agent.on_stream(&mut ctx, conn, StreamEvent::Closed),
        }
        // The slot cannot have been reused: ids are never recycled.
        self.agents[target.0] = Some(agent);
    }

    /// Run until the queue drains, an agent stops the sim, or
    /// `max_time` is hit.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until simulated time `t` (events at exactly `t` included).
    pub fn run_until(&mut self, t: Time) {
        loop {
            match self.inner.queue.peek_time() {
                Some(peek) if peek <= t && !self.inner.stopped => {
                    if !self.step() {
                        break;
                    }
                }
                _ => {
                    if self.inner.now < t {
                        self.inner.now = t;
                    }
                    break;
                }
            }
        }
    }

    /// Pending event count (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.inner.queue.len()
    }

    /// Total events dispatched since construction — the denominator of
    /// the perf harness's events/sec figures. Monotonic, wall-clock
    /// free, and identical across runs of the same scenario.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Agent that records everything it sees.
    #[derive(Clone, Default)]
    struct Probe {
        timers: Vec<(Time, u64)>,
        frames: Vec<(Time, u32, Bytes)>,
        stream_log: Vec<String>,
        conn: Option<ConnId>,
        autoreply: bool,
        listen_service: Option<u16>,
    }

    impl Agent for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(s) = self.listen_service {
                ctx.listen(s);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.timers.push((ctx.now(), token));
        }
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: u32, frame: Bytes) {
            self.frames.push((ctx.now(), port, frame.clone()));
            if self.autoreply {
                ctx.send_frame(port, frame);
                self.autoreply = false;
            }
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, ev: StreamEvent) {
            match ev {
                StreamEvent::Opened {
                    initiated_by_us, ..
                } => {
                    self.conn = Some(conn);
                    self.stream_log.push(format!("open:{initiated_by_us}"));
                    if !initiated_by_us {
                        ctx.conn_send(conn, Bytes::from_static(b"hello"));
                    }
                }
                StreamEvent::Data(d) => {
                    self.stream_log
                        .push(format!("data:{}", String::from_utf8_lossy(&d)));
                }
                StreamEvent::Closed => self.stream_log.push("closed".into()),
            }
        }
    }

    /// Agent that sends a frame at start.
    #[derive(Clone)]
    struct Sender {
        port: u32,
        payload: Bytes,
    }
    impl Agent for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send_frame(self.port, self.payload.clone());
        }
    }

    #[test]
    fn sim_is_send() {
        // Sweeps move fully built simulations into worker threads; a
        // non-Send field sneaking into the kernel must fail here, not
        // at the distant ScenarioMatrix spawn site.
        fn assert_send<T: Send>() {}
        assert_send::<Sim>();
    }

    #[test]
    fn sim_is_clone() {
        // Checkpoint/fork deep-copies whole simulations; a non-Clone
        // field sneaking into the kernel must fail here, not at the
        // distant Scenario::snapshot site.
        fn assert_clone<T: Clone>() {}
        assert_clone::<Sim>();
    }

    #[test]
    fn cloned_sim_replays_identically() {
        // Clone mid-run, then drive both copies to completion: same
        // delivery schedule, same event count, same RNG draws (the link
        // is lossy, so divergent RNG state would change what arrives).
        fn harvest(sim: &Sim, b: AgentId) -> (Vec<(Time, u32)>, u64) {
            (
                sim.agent_as::<Probe>(b)
                    .unwrap()
                    .frames
                    .iter()
                    .map(|(t, p, _)| (*t, *p))
                    .collect(),
                sim.events_dispatched(),
            )
        }
        #[derive(Clone)]
        struct Sprayer {
            left: u32,
        }
        impl Agent for Sprayer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(Duration::from_millis(10), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                if self.left > 0 {
                    self.left -= 1;
                    ctx.send_frame(1, Bytes::from(vec![0u8; 64]));
                    ctx.schedule(Duration::from_millis(10), 0);
                }
            }
        }
        let mut sim = Sim::new(SimConfig {
            seed: 99,
            ..Default::default()
        });
        let a = sim.add_agent("a", Box::new(Sprayer { left: 40 }));
        let b = sim.add_agent("b", Box::new(Probe::default()));
        sim.add_link(
            (a, 1),
            (b, 1),
            LinkProfile {
                latency: Duration::from_millis(3),
                bandwidth_bps: 10_000_000,
                faults: crate::link::FaultProfile::lossy(50.0),
            },
        );
        sim.run_until(Time::from_millis(200));
        let mut fork = sim.clone();
        sim.run();
        fork.run();
        assert_eq!(harvest(&sim, b), harvest(&fork, b));
    }

    #[test]
    fn timer_fires_at_right_time() {
        #[derive(Clone)]
        struct T;
        impl Agent for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(Duration::from_millis(500), 42);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                assert_eq!(token, 42);
                assert_eq!(ctx.now(), Time::from_millis(500));
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        sim.add_agent("t", Box::new(T));
        sim.run();
        assert_eq!(sim.now(), Time::from_millis(500));
    }

    #[test]
    fn frame_crosses_link_with_latency() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_agent(
            "a",
            Box::new(Sender {
                port: 1,
                payload: Bytes::from_static(b"ping"),
            }),
        );
        let b = sim.add_agent("b", Box::new(Probe::default()));
        sim.add_link(
            (a, 1),
            (b, 3),
            LinkProfile::with_latency(Duration::from_millis(7)),
        );
        sim.run();
        let probe = sim.agent_as::<Probe>(b).unwrap();
        assert_eq!(probe.frames.len(), 1);
        let (t, port, data) = &probe.frames[0];
        assert_eq!(*t, Time::from_millis(7));
        assert_eq!(*port, 3);
        assert_eq!(&data[..], b"ping");
    }

    #[test]
    fn bandwidth_serializes_back_to_back_frames() {
        #[derive(Clone)]
        struct Burst;
        impl Agent for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                // Two 125-byte frames at 1 Mbps: 1 ms serialization each.
                for _ in 0..2 {
                    ctx.send_frame(1, Bytes::from(vec![0u8; 125]));
                }
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_agent("burst", Box::new(Burst));
        let b = sim.add_agent("probe", Box::new(Probe::default()));
        sim.add_link(
            (a, 1),
            (b, 1),
            LinkProfile {
                latency: Duration::ZERO,
                bandwidth_bps: 1_000_000,
                faults: Default::default(),
            },
        );
        sim.run();
        let probe = sim.agent_as::<Probe>(b).unwrap();
        assert_eq!(probe.frames.len(), 2);
        assert_eq!(probe.frames[0].0, Time::from_millis(1));
        assert_eq!(probe.frames[1].0, Time::from_millis(2));
    }

    #[test]
    fn stream_handshake_and_data() {
        #[derive(Clone)]
        struct Dialer {
            peer: AgentId,
            log: Vec<String>,
        }
        impl Agent for Dialer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.connect(self.peer, 6633, ConnProfile::default());
            }
            fn on_stream(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, ev: StreamEvent) {
                match ev {
                    StreamEvent::Opened { .. } => self.log.push("open".into()),
                    StreamEvent::Data(d) => self
                        .log
                        .push(format!("data:{}", String::from_utf8_lossy(&d))),
                    StreamEvent::Closed => self.log.push("closed".into()),
                }
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let listener = sim.add_agent(
            "listener",
            Box::new(Probe {
                listen_service: Some(6633),
                ..Default::default()
            }),
        );
        let dialer = sim.add_agent(
            "dialer",
            Box::new(Dialer {
                peer: listener,
                log: vec![],
            }),
        );
        sim.run();
        let d = sim.agent_as::<Dialer>(dialer).unwrap();
        // Opened, then the listener's greeting.
        assert_eq!(d.log, vec!["open", "data:hello"]);
        let l = sim.agent_as::<Probe>(listener).unwrap();
        assert_eq!(l.stream_log, vec!["open:false"]);
    }

    #[test]
    fn connect_to_non_listener_is_refused() {
        #[derive(Clone)]
        struct Dialer {
            peer: AgentId,
            refused: bool,
        }
        impl Agent for Dialer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.connect(self.peer, 9999, ConnProfile::default());
            }
            fn on_stream(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId, ev: StreamEvent) {
                if matches!(ev, StreamEvent::Closed) {
                    self.refused = true;
                }
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let silent = sim.add_agent("silent", Box::new(Probe::default()));
        let dialer = sim.add_agent(
            "dialer",
            Box::new(Dialer {
                peer: silent,
                refused: false,
            }),
        );
        sim.run();
        assert!(sim.agent_as::<Dialer>(dialer).unwrap().refused);
    }

    #[test]
    fn stream_data_is_in_order() {
        #[derive(Clone)]
        struct Blast {
            peer: AgentId,
        }
        impl Agent for Blast {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let c = ctx.connect(self.peer, 1, ConnProfile::default());
                for i in 0..50u8 {
                    ctx.conn_send(c, Bytes::from(vec![i]));
                }
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let rx = sim.add_agent(
            "rx",
            Box::new(Probe {
                listen_service: Some(1),
                ..Default::default()
            }),
        );
        sim.add_agent("tx", Box::new(Blast { peer: rx }));
        sim.run();
        let p = sim.agent_as::<Probe>(rx).unwrap();
        let data: Vec<&String> = p
            .stream_log
            .iter()
            .filter(|s| s.starts_with("data"))
            .collect();
        assert_eq!(data.len(), 50);
        // Probe logs raw bytes; verify monotone order via length-1 payload bytes.
        for (i, s) in data.iter().enumerate() {
            let byte = s.as_bytes()[5];
            assert_eq!(byte as usize, i);
        }
    }

    #[test]
    fn spawn_at_runtime_starts_agent() {
        #[derive(Clone)]
        struct Spawner;
        impl Agent for Spawner {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(Duration::from_secs(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                ctx.spawn("child", Box::new(Probe::default()));
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        sim.add_agent("spawner", Box::new(Spawner));
        sim.run();
        assert_eq!(sim.live_agents(), 2);
    }

    #[test]
    fn kill_closes_peer_connections() {
        #[derive(Clone)]
        struct Killer {
            victim: AgentId,
        }
        impl Agent for Killer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.connect(self.victim, 5, ConnProfile::default());
                ctx.schedule(Duration::from_secs(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                ctx.kill(self.victim);
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let victim = sim.add_agent(
            "victim",
            Box::new(Probe {
                listen_service: Some(5),
                ..Default::default()
            }),
        );
        let killer = sim.add_agent("killer", Box::new(Killer { victim }));
        sim.run();
        assert_eq!(sim.live_agents(), 1);
        // The killer side eventually observes Closed... killer is not a Probe,
        // but the victim was killed after the handshake: ensure no panic and
        // the victim is gone.
        assert!(sim.agent_as::<Probe>(victim).is_none());
        let _ = killer;
    }

    #[test]
    fn link_down_drops_frames() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_agent(
            "a",
            Box::new(Sender {
                port: 1,
                payload: Bytes::from_static(b"x"),
            }),
        );
        let b = sim.add_agent("b", Box::new(Probe::default()));
        let l = sim.add_link((a, 1), (b, 1), LinkProfile::default());
        sim.set_link_up(l, false);
        sim.run();
        assert!(sim.agent_as::<Probe>(b).unwrap().frames.is_empty());
        assert_eq!(sim.tracer().counter("link.tx_down"), 1);
    }

    #[test]
    fn run_until_stops_at_time() {
        #[derive(Clone)]
        struct Ticker;
        impl Agent for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(Duration::from_secs(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                ctx.schedule(Duration::from_secs(1), 0);
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        sim.add_agent("tick", Box::new(Ticker));
        sim.run_until(Time::from_millis(3500));
        assert_eq!(sim.now(), Time::from_millis(3500));
        assert!(sim.pending_events() > 0);
    }

    #[test]
    fn max_time_caps_run() {
        #[derive(Clone)]
        struct Ticker;
        impl Agent for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(Duration::from_secs(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                ctx.schedule(Duration::from_secs(1), 0);
            }
        }
        let mut sim = Sim::new(SimConfig {
            max_time: Some(Time::from_secs(10)),
            ..Default::default()
        });
        sim.add_agent("tick", Box::new(Ticker));
        sim.run();
        assert_eq!(sim.now(), Time::from_secs(10));
    }

    #[test]
    fn counters_identical_across_counting_levels() {
        // Verbosity chooses which *events* are stored; the counters
        // must say exactly the same thing at every counting level —
        // and stay untouched at Off (the release-sweep fast path).
        fn counters_at(level: TraceLevel) -> std::collections::BTreeMap<String, u64> {
            let mut sim = Sim::new(SimConfig {
                trace_level: level,
                ..Default::default()
            });
            let a = sim.add_agent(
                "a",
                Box::new(Sender {
                    port: 1,
                    payload: Bytes::from(vec![0u8; 64]),
                }),
            );
            let b = sim.add_agent(
                "b",
                Box::new(Probe {
                    autoreply: true,
                    listen_service: Some(7),
                    ..Default::default()
                }),
            );
            sim.add_link(
                (a, 1),
                (b, 1),
                LinkProfile {
                    latency: Duration::from_millis(2),
                    bandwidth_bps: 10_000_000,
                    faults: crate::link::FaultProfile::lossy(30.0),
                },
            );
            sim.run();
            sim.tracer().counters()
        }
        let info = counters_at(TraceLevel::Info);
        let debug = counters_at(TraceLevel::Debug);
        let trace = counters_at(TraceLevel::Trace);
        assert!(info.contains_key("link.tx_frames"), "{info:?}");
        assert_eq!(info, debug);
        assert_eq!(debug, trace);
        assert!(counters_at(TraceLevel::Off).is_empty());
    }

    #[test]
    fn duplicate_fault_delivers_original_before_copy() {
        // The single-clone restructure must keep the delivery order:
        // original first, duplicate second, both at the same instant.
        let mut sim = Sim::new(SimConfig {
            seed: 11,
            ..Default::default()
        });
        let a = sim.add_agent(
            "a",
            Box::new(Sender {
                port: 1,
                payload: Bytes::from_static(b"dup"),
            }),
        );
        let b = sim.add_agent("b", Box::new(Probe::default()));
        sim.add_link(
            (a, 1),
            (b, 1),
            LinkProfile {
                latency: Duration::from_millis(1),
                bandwidth_bps: 1_000_000_000,
                faults: crate::link::FaultProfile {
                    duplicate_chance: 1.0,
                    ..Default::default()
                },
            },
        );
        sim.run();
        let probe = sim.agent_as::<Probe>(b).unwrap();
        assert_eq!(probe.frames.len(), 2);
        assert_eq!(probe.frames[0].0, probe.frames[1].0);
        assert_eq!(&probe.frames[0].2[..], b"dup");
        assert_eq!(&probe.frames[1].2[..], b"dup");
        assert_eq!(sim.tracer().counter("link.duplicated"), 1);
        assert_eq!(sim.tracer().counter("link.tx_frames"), 1);
    }

    #[test]
    fn events_dispatched_counts_steps() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_agent(
            "a",
            Box::new(Sender {
                port: 1,
                payload: Bytes::from_static(b"x"),
            }),
        );
        let b = sim.add_agent("b", Box::new(Probe::default()));
        sim.add_link((a, 1), (b, 1), LinkProfile::default());
        sim.run();
        // Two Start events plus one Frame delivery.
        assert_eq!(sim.events_dispatched(), 3);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> Vec<(Time, u32)> {
            let mut sim = Sim::new(SimConfig {
                seed,
                ..Default::default()
            });
            let a = sim.add_agent(
                "a",
                Box::new(Sender {
                    port: 1,
                    payload: Bytes::from(vec![0u8; 100]),
                }),
            );
            let b = sim.add_agent("b", Box::new(Probe::default()));
            sim.add_link(
                (a, 1),
                (b, 1),
                LinkProfile {
                    latency: Duration::from_millis(3),
                    bandwidth_bps: 10_000_000,
                    faults: crate::link::FaultProfile::lossy(50.0),
                },
            );
            sim.run();
            sim.agent_as::<Probe>(b)
                .unwrap()
                .frames
                .iter()
                .map(|(t, p, _)| (*t, *p))
                .collect()
        }
        assert_eq!(run_once(7), run_once(7));
    }

    #[test]
    fn stop_sim_halts_immediately() {
        #[derive(Clone)]
        struct Stopper;
        impl Agent for Stopper {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(Duration::from_secs(1), 0);
                ctx.schedule(Duration::from_secs(2), 1);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                if token == 0 {
                    ctx.stop_sim();
                }
                assert_ne!(token, 1, "event after stop must not run");
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        sim.add_agent("stopper", Box::new(Stopper));
        sim.run();
        assert_eq!(sim.now(), Time::from_secs(1));
    }

    #[test]
    fn remove_link_frees_ports() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_agent("a", Box::new(Probe::default()));
        let b = sim.add_agent("b", Box::new(Probe::default()));
        let l = sim.inner.add_link((a, 1), (b, 1), LinkProfile::default());
        sim.inner.remove_link(l);
        // Re-adding on the same ports must not panic.
        sim.inner.add_link((a, 1), (b, 1), LinkProfile::default());
    }
}
