//! # rf-sim — deterministic discrete-event network simulation kernel
//!
//! This crate is the substrate for the whole RouteFlow-autoconfiguration
//! reproduction. The paper ran its framework on the OFELIA testbed (real
//! machines, Open vSwitch processes in network namespaces, Ethernet
//! cables); we substitute a **deterministic discrete-event simulator** so
//! every experiment is exactly reproducible from a `(topology, seed,
//! config)` triple.
//!
//! ## Model
//!
//! * **Agents** ([`Agent`]) are the active entities: OpenFlow switches,
//!   controllers, FlowVisor, virtual machines, hosts. Agents only react
//!   to events; between events they hold no locks and spin no threads.
//! * **Links** ([`link::LinkProfile`]) are lossy packet pipes carrying
//!   Ethernet frames between `(agent, port)` endpoints, with latency,
//!   bandwidth serialization and fault injection (drop / corrupt /
//!   duplicate), in the spirit of the smoltcp fault-injection examples.
//! * **Streams** ([`ConnId`]) are reliable, in-order byte channels that
//!   model TCP control connections (switch ↔ FlowVisor ↔ controllers,
//!   RPC client ↔ RPC server). Bytes go in, the same bytes come out
//!   after a latency; framing is the application's job, exactly as with
//!   a real socket.
//! * **Time** ([`time::Time`]) is a `u64` nanosecond counter. The event
//!   queue breaks ties by insertion sequence, which — together with a
//!   single seeded RNG — makes runs bit-for-bit deterministic.
//!
//! ## Quickstart
//!
//! ```
//! use rf_sim::{Sim, Agent, Ctx, SimConfig};
//! use std::time::Duration;
//!
//! #[derive(Clone)]
//! struct Echo;
//! impl Agent for Echo {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.schedule(Duration::from_secs(1), 7);
//!     }
//!     fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
//!         assert_eq!(token, 7);
//!         ctx.trace("echo", "timer fired");
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::default());
//! sim.add_agent("echo", Box::new(Echo));
//! sim.run();
//! assert_eq!(sim.now().as_secs_f64(), 1.0);
//! ```

pub mod kernel;
pub mod link;
pub mod partition;
pub mod queue;
pub mod time;
pub mod trace;

pub use kernel::{
    Agent, AgentId, CloneAgent, ConnId, ConnProfile, Ctx, LinkId, Sim, SimConfig, StreamEvent,
};
pub use link::{FaultProfile, LinkProfile};
pub use partition::{run_parallel_until, ParallelOutcome};
pub use time::Time;
pub use trace::{KernelCounter, TraceEvent, TraceLevel, Tracer};
