//! Link profiles: latency, bandwidth and fault injection.
//!
//! Data-plane links between switches (and between virtual machines in
//! the mirrored environment) are modelled as full-duplex pipes. Each
//! direction serializes frames at `bandwidth_bps` and then propagates
//! them after `latency`. Fault injection follows the smoltcp example
//! conventions: independent per-frame drop, corruption and duplication
//! probabilities.

use bytes::{Bytes, BytesMut};
use rand::Rng;
use std::time::Duration;

/// Stochastic fault model applied per frame, per direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Probability in `[0,1]` that a frame is silently dropped.
    pub drop_chance: f64,
    /// Probability in `[0,1]` that one octet of the frame is flipped.
    pub corrupt_chance: f64,
    /// Probability in `[0,1]` that the frame is delivered twice.
    pub duplicate_chance: f64,
    /// Frames longer than this many octets are dropped (0 = no limit).
    pub size_limit: usize,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            duplicate_chance: 0.0,
            size_limit: 0,
        }
    }
}

impl FaultProfile {
    /// A perfectly reliable link.
    pub const fn reliable() -> Self {
        FaultProfile {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            duplicate_chance: 0.0,
            size_limit: 0,
        }
    }

    /// A lossy link dropping `pct` percent of frames.
    pub fn lossy(pct: f64) -> Self {
        FaultProfile {
            drop_chance: (pct / 100.0).clamp(0.0, 1.0),
            ..Self::reliable()
        }
    }

    /// Outcome of passing one frame through the fault model.
    pub fn apply<R: Rng>(&self, rng: &mut R, frame: &Bytes) -> FaultOutcome {
        if self.size_limit != 0 && frame.len() > self.size_limit {
            return FaultOutcome::Dropped;
        }
        if self.drop_chance > 0.0 && rng.gen_bool(self.drop_chance.clamp(0.0, 1.0)) {
            return FaultOutcome::Dropped;
        }
        let corrupted = if self.corrupt_chance > 0.0
            && !frame.is_empty()
            && rng.gen_bool(self.corrupt_chance.clamp(0.0, 1.0))
        {
            let mut buf = BytesMut::from(&frame[..]);
            let idx = rng.gen_range(0..buf.len());
            let bit = 1u8 << rng.gen_range(0..8);
            buf[idx] ^= bit;
            Some(buf.freeze())
        } else {
            None
        };
        let duplicate =
            self.duplicate_chance > 0.0 && rng.gen_bool(self.duplicate_chance.clamp(0.0, 1.0));
        FaultOutcome::Deliver {
            frame: corrupted.unwrap_or_else(|| frame.clone()),
            duplicate,
        }
    }
}

/// Result of [`FaultProfile::apply`].
#[derive(Clone, Debug, PartialEq)]
pub enum FaultOutcome {
    Dropped,
    Deliver { frame: Bytes, duplicate: bool },
}

/// Static properties of a point-to-point link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkProfile {
    /// One-way propagation delay.
    pub latency: Duration,
    /// Serialization rate in bits per second (0 = infinite).
    pub bandwidth_bps: u64,
    /// Fault injection model.
    pub faults: FaultProfile,
}

impl Default for LinkProfile {
    fn default() -> Self {
        // 1 ms / 1 Gbps: a sensible default for an emulated testbed link.
        LinkProfile {
            latency: Duration::from_millis(1),
            bandwidth_bps: 1_000_000_000,
            faults: FaultProfile::reliable(),
        }
    }
}

impl LinkProfile {
    /// A link with the given one-way latency and infinite bandwidth.
    pub fn with_latency(latency: Duration) -> Self {
        LinkProfile {
            latency,
            bandwidth_bps: 0,
            ..Default::default()
        }
    }

    /// Serialization delay for a frame of `len` octets.
    pub fn serialization_delay(&self, len: usize) -> Duration {
        match (len as u64 * 8)
            .saturating_mul(1_000_000_000)
            .checked_div(self.bandwidth_bps)
        {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame(n: usize) -> Bytes {
        Bytes::from(vec![0xAAu8; n])
    }

    #[test]
    fn reliable_link_delivers_unchanged() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = frame(64);
        match FaultProfile::reliable().apply(&mut rng, &f) {
            FaultOutcome::Deliver { frame, duplicate } => {
                assert_eq!(frame, f);
                assert!(!duplicate);
            }
            FaultOutcome::Dropped => panic!("reliable link dropped a frame"),
        }
    }

    #[test]
    fn drop_chance_one_always_drops() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = FaultProfile {
            drop_chance: 1.0,
            ..FaultProfile::reliable()
        };
        assert_eq!(p.apply(&mut rng, &frame(10)), FaultOutcome::Dropped);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = FaultProfile {
            corrupt_chance: 1.0,
            ..FaultProfile::reliable()
        };
        let f = frame(32);
        match p.apply(&mut rng, &f) {
            FaultOutcome::Deliver { frame: out, .. } => {
                let diff: u32 = out
                    .iter()
                    .zip(f.iter())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(diff, 1, "exactly one bit must differ");
            }
            _ => panic!("corruption must still deliver"),
        }
    }

    #[test]
    fn size_limit_drops_oversize() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = FaultProfile {
            size_limit: 100,
            ..FaultProfile::reliable()
        };
        assert_eq!(p.apply(&mut rng, &frame(101)), FaultOutcome::Dropped);
        assert!(matches!(
            p.apply(&mut rng, &frame(100)),
            FaultOutcome::Deliver { .. }
        ));
    }

    #[test]
    fn lossy_drops_roughly_expected_fraction() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = FaultProfile::lossy(25.0);
        let f = frame(8);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| p.apply(&mut rng, &f) == FaultOutcome::Dropped)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn serialization_delay_math() {
        let p = LinkProfile {
            latency: Duration::ZERO,
            bandwidth_bps: 1_000_000, // 1 Mbps
            faults: FaultProfile::reliable(),
        };
        // 125 bytes = 1000 bits = 1 ms at 1 Mbps.
        assert_eq!(p.serialization_delay(125), Duration::from_millis(1));
        let inf = LinkProfile::with_latency(Duration::from_millis(5));
        assert_eq!(inf.serialization_delay(1_000_000), Duration::ZERO);
    }

    #[test]
    fn duplicate_chance_one_duplicates() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = FaultProfile {
            duplicate_chance: 1.0,
            ..FaultProfile::reliable()
        };
        match p.apply(&mut rng, &frame(9)) {
            FaultOutcome::Deliver { duplicate, .. } => assert!(duplicate),
            _ => panic!(),
        }
    }
}
