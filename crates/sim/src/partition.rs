//! Conservative parallel execution: partition one simulation across
//! cores, byte-identical to the sequential kernel.
//!
//! ## Model
//!
//! [`run_parallel_until`] cuts the agent population into **regions**:
//! every agent incident to a packet link (switches, hosts, traffic
//! endpoints) joins a *dataplane* cluster, clusters connected by
//! zero-latency edges are merged (a zero-latency edge admits no
//! lookahead window, so its endpoints must step together), and the
//! clusters are chunked — in BFS order over the link graph, weight
//! balanced — into at most `cores` contiguous groups. Linkless agents
//! (the controller plane, RPC machinery, flow-level traffic engines,
//! the chaos injector) form region 0. Each region gets a full replica
//! of the world but owns only the events targeting its own agents.
//!
//! ## Windows and the lookahead bound
//!
//! Let `L` be the minimum latency over *cross-region* edges (links and
//! open stream connections). Any event an agent emits toward another
//! region arrives at least `L` after the instant it was emitted, so
//! all regions can safely dispatch every event strictly before
//! `end = min(start + L, target + 1ns)`, where `start` is the global
//! minimum pending-event time: a cross-region event emitted inside the
//! window lands at `≥ start + L ≥ end`, i.e. never inside it.
//!
//! ## Byte-identity: barrier-time sequence finalization
//!
//! Sequential runs order same-instant events by the global `(time,
//! seq)` key, `seq` assigned at push time. Regions cannot share that
//! counter, so during a window each region assigns *provisional*
//! sequence numbers starting at the shared split-time base — within a
//! region, provisional order equals the push order the sequential run
//! would have produced, which is all intra-window dispatch needs
//! (cross-region events never land inside the window). At the barrier
//! the coordinator k-way-merges the regions' dispatch logs in global
//! `(time, finalized seq)` order — exactly the sequential dispatch
//! order — and replays each record's pushes against the real global
//! counter, producing the *final* sequence number for every event
//! pushed that window. Provisional numbers are rewritten in place
//! (the map is monotone, so queue order is preserved), cross-region
//! events are delivered to their owner's queue under their final
//! numbers, and every region's counter is rebased. The merged run
//! therefore dispatches the exact sequential event order, and the
//! reassembled world is byte-identical to the sequential one.
//!
//! ## Fallbacks and violations
//!
//! Parallel execution is a pure optimization, never a semantics
//! change. A span is refused up front (serial fallback) when tracing
//! is on, stochastic link faults are armed, reserved-lane events are
//! pending (chaos schedules, fork-injected faults), the partition
//! collapses below two dataplane regions, or `max_time` would bite.
//! Operations the window protocol cannot replicate — topology
//! mutation, agent spawn/kill, `connect`/`listen`/`conn_close`,
//! shared-RNG access, `stop_sim`, reserved scheduling — mark a
//! **violation** on the replica; the coordinator then discards all
//! replicas and reruns the span on the sequential kernel from the
//! pristine pre-split world.

use crate::kernel::{ev_target, Ev, ParCtl, PushRec, Sim};
use crate::time::Time;
use crate::trace::TraceLevel;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

/// How [`run_parallel_until`] executed a span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParallelOutcome {
    /// The span ran partitioned across worker threads.
    Parallel {
        /// Region count, including the control region.
        regions: usize,
        /// Synchronization windows executed.
        windows: u64,
        /// Events exchanged across region boundaries at barriers.
        cross_events: u64,
    },
    /// The span ran on the sequential kernel (the state is exactly
    /// what `Sim::run_until` would have produced — it did produce it).
    Serial { reason: &'static str },
}

impl ParallelOutcome {
    pub fn is_parallel(&self) -> bool {
        matches!(self, ParallelOutcome::Parallel { .. })
    }
}

/// The graph cut: a region per agent, the region count, and the
/// conservative lookahead bound.
pub(crate) struct PartitionPlan {
    /// Region of each agent (index = `AgentId.0`); region 0 is the
    /// control region, dataplane regions are `1..regions`.
    pub(crate) region_of: Vec<u32>,
    /// Total regions, control region included.
    pub(crate) regions: usize,
    /// Minimum cross-region edge latency; `None` when no edge crosses
    /// a region boundary (one unbounded window).
    pub(crate) lookahead: Option<Duration>,
}

fn uf_find(uf: &mut [usize], mut x: usize) -> usize {
    while uf[x] != x {
        uf[x] = uf[uf[x]]; // path halving
        x = uf[x];
    }
    x
}

fn uf_union(uf: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (uf_find(uf, a), uf_find(uf, b));
    if ra != rb {
        // Smaller index wins the root, keeping cluster identity (and
        // therefore the BFS seed order) deterministic.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        uf[hi] = lo;
    }
}

/// Cut the agent graph into regions. Returns `None` when the cut
/// cannot yield at least two dataplane regions (serial fallback).
pub(crate) fn build_plan(sim: &Sim, cores: usize) -> Option<PartitionPlan> {
    let inner = &sim.inner;
    let n = inner.next_agent;
    if cores < 2 || n == 0 {
        return None;
    }
    // Union zero-latency edges: their endpoints admit no lookahead
    // window, so they must live in one region.
    let mut uf: Vec<usize> = (0..n).collect();
    let mut linked = vec![false; n];
    for l in inner.links.iter().filter(|l| !l.removed) {
        linked[l.a.agent.0] = true;
        linked[l.b.agent.0] = true;
        if l.profile.latency.is_zero() {
            uf_union(&mut uf, l.a.agent.0, l.b.agent.0);
        }
    }
    for c in inner.conns.iter().filter(|c| !c.closed) {
        if c.profile.latency.is_zero() {
            uf_union(&mut uf, c.ends[0].0, c.ends[1].0);
        }
    }
    // Cluster inventory: weight (agent count) per root, and whether
    // any member touches a link (dataplane) — BTreeMap for
    // deterministic iteration order.
    use std::collections::{BTreeMap, BTreeSet};
    let mut weight: BTreeMap<usize, u64> = BTreeMap::new();
    let mut dataplane: BTreeSet<usize> = BTreeSet::new();
    for (a, &has_link) in linked.iter().enumerate() {
        let r = uf_find(&mut uf, a);
        *weight.entry(r).or_insert(0) += 1;
        if has_link {
            dataplane.insert(r);
        }
    }
    // Cluster adjacency over the link graph (cross-cluster edges only).
    let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for l in inner.links.iter().filter(|l| !l.removed) {
        let (ra, rb) = (uf_find(&mut uf, l.a.agent.0), uf_find(&mut uf, l.b.agent.0));
        if ra != rb {
            adj.entry(ra).or_default().insert(rb);
            adj.entry(rb).or_default().insert(ra);
        }
    }
    // Order dataplane clusters by BFS from the smallest root, so a
    // contiguous chunk of the order is a connected (low-cut) piece of
    // the topology; disconnected components follow in root order.
    let mut order: Vec<usize> = Vec::with_capacity(dataplane.len());
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    for &seed in &dataplane {
        if visited.contains(&seed) {
            continue;
        }
        let mut frontier = std::collections::VecDeque::from([seed]);
        visited.insert(seed);
        while let Some(r) = frontier.pop_front() {
            order.push(r);
            if let Some(next) = adj.get(&r) {
                for &nb in next {
                    if dataplane.contains(&nb) && visited.insert(nb) {
                        frontier.push_back(nb);
                    }
                }
            }
        }
    }
    if order.len() < 2 {
        return None;
    }
    // Chunk the BFS order into at most `cores` contiguous groups,
    // balanced by agent weight. Close a chunk once its cumulative
    // share is met — or when exactly one cluster per remaining chunk
    // is left, so every chunk gets at least one.
    let k = cores.min(order.len());
    let total: u64 = order.iter().map(|r| weight[r]).sum();
    let mut chunk_of: BTreeMap<usize, u32> = BTreeMap::new();
    let mut chunk = 0usize;
    let mut acc = 0u64;
    for (i, &root) in order.iter().enumerate() {
        chunk_of.insert(root, chunk as u32 + 1);
        acc += weight[&root];
        let after = order.len() - i - 1;
        let chunks_after = k - chunk - 1;
        if chunk + 1 < k && (acc * k as u64 >= total * (chunk as u64 + 1) || after == chunks_after)
        {
            chunk += 1;
        }
    }
    let regions = chunk + 2; // used dataplane chunks + control region 0
    let mut region_of = vec![0u32; n];
    for (a, slot) in region_of.iter_mut().enumerate() {
        let r = uf_find(&mut uf, a);
        *slot = chunk_of.get(&r).copied().unwrap_or(0);
    }
    // Lookahead: minimum latency over live edges whose endpoints now
    // sit in different regions. Zero is impossible by construction —
    // zero-latency edges were unioned into one cluster.
    let mut lookahead: Option<Duration> = None;
    let mut consider = |lat: Duration| {
        lookahead = Some(lookahead.map_or(lat, |cur| cur.min(lat)));
    };
    for l in inner.links.iter().filter(|l| !l.removed) {
        if region_of[l.a.agent.0] != region_of[l.b.agent.0] {
            consider(l.profile.latency);
        }
    }
    for c in inner.conns.iter().filter(|c| !c.closed) {
        if region_of[c.ends[0].0] != region_of[c.ends[1].0] {
            consider(c.profile.latency);
        }
    }
    if lookahead == Some(Duration::ZERO) {
        // Defensive: a zero bound would make windows empty.
        return None;
    }
    Some(PartitionPlan {
        region_of,
        regions,
        lookahead,
    })
}

/// Conditions that must hold before a span may be split. Each failure
/// names the serial-fallback reason.
fn precheck(sim: &mut Sim, target: Time) -> Result<(), &'static str> {
    if sim.inner.tracer.level() != TraceLevel::Off {
        // The tracer is a single ordered log; regions cannot interleave
        // into it. At Off, every trace/count call is a no-op, so the
        // tracer is provably frozen across the span.
        return Err("tracing enabled");
    }
    if sim.inner.stopped {
        return Err("sim stopped");
    }
    if !sim.inner.pending_spawn.is_empty()
        || !sim.inner.pending_kill.is_empty()
        || !sim.inner.pending_revive.is_empty()
    {
        return Err("agent table changes pending");
    }
    if let Some(max) = sim.cfg.max_time {
        if max < target {
            return Err("max_time inside span");
        }
    }
    if sim.inner.queue.has_reserved_pending() {
        return Err("reserved events pending");
    }
    for l in sim.inner.links.iter().filter(|l| !l.removed) {
        let f = &l.profile.faults;
        if f.drop_chance > 0.0 || f.corrupt_chance > 0.0 || f.duplicate_chance > 0.0 {
            // Stochastic faults draw from the shared RNG per frame.
            return Err("stochastic link faults armed");
        }
    }
    Ok(())
}

/// One dispatched event in a region's window log.
struct DispatchRec {
    at: Time,
    /// Queue key at dispatch time: a pre-split final number, or a
    /// provisional one (≥ the window's base) finalized at the barrier.
    seq: u64,
    pushes: Vec<PushRec>,
}

enum Cmd {
    /// Dispatch every owned event strictly before `end`.
    Window {
        end: Time,
    },
    /// Apply barrier results: rewrite provisional→final sequence
    /// numbers, insert routed cross-region events, rebase the counter.
    Barrier {
        remap: Vec<(u64, u64)>,
        inserts: Vec<(Time, u64, Ev)>,
        next_seq: u64,
    },
    Done,
}

enum Reply {
    Window {
        log: Vec<DispatchRec>,
        violation: Option<&'static str>,
    },
    Barrier {
        next_at: Option<Time>,
    },
}

/// Region worker: owns one replica, executes windows on command.
fn worker(mut sim: Sim, cmds: Receiver<Cmd>, replies: Sender<Reply>) -> Sim {
    while let Ok(cmd) = cmds.recv() {
        match cmd {
            Cmd::Window { end } => {
                let mut log = Vec::new();
                let mut violation = None;
                while let Some((at, _)) = sim.inner.queue.peek_entry_key() {
                    if at >= end {
                        break;
                    }
                    let (at, seq, ev) = sim.inner.queue.pop_entry().expect("peeked");
                    sim.inner.now = at;
                    sim.events_dispatched += 1;
                    sim.dispatch(ev);
                    sim.apply_pending();
                    let par = sim.inner.par.as_deref_mut().expect("window replica");
                    log.push(DispatchRec {
                        at,
                        seq,
                        pushes: std::mem::take(&mut par.pushes),
                    });
                    if par.violation.is_some() {
                        violation = par.violation;
                        break;
                    }
                }
                if replies.send(Reply::Window { log, violation }).is_err() {
                    break;
                }
            }
            Cmd::Barrier {
                remap,
                inserts,
                next_seq,
            } => {
                if !remap.is_empty() {
                    let map: HashMap<u64, u64> = remap.into_iter().collect();
                    sim.inner.queue.remap_seqs(&map);
                }
                for (at, seq, ev) in inserts {
                    sim.inner.queue.push_with_seq(at, seq, ev);
                }
                sim.inner.queue.set_next_ordinary_seq(next_seq);
                let next_at = sim.inner.queue.peek_time();
                if replies.send(Reply::Barrier { next_at }).is_err() {
                    break;
                }
            }
            Cmd::Done => break,
        }
    }
    sim
}

/// Merge one window's per-region dispatch logs in global sequential
/// order, assigning final sequence numbers to every push. Returns the
/// advanced global counter, the per-region provisional→final remaps,
/// the per-destination cross-region inserts, and the cross count.
#[allow(clippy::type_complexity)]
fn merge_window(
    mut logs: Vec<Vec<DispatchRec>>,
    base: u64,
    region_of: &[u32],
    regions: usize,
) -> (u64, Vec<Vec<(u64, u64)>>, Vec<Vec<(Time, u64, Ev)>>, u64) {
    let mut idx = vec![0usize; regions];
    let mut maps: Vec<HashMap<u64, u64>> = (0..regions).map(|_| HashMap::new()).collect();
    let mut remaps: Vec<Vec<(u64, u64)>> = (0..regions).map(|_| Vec::new()).collect();
    let mut inserts: Vec<Vec<(Time, u64, Ev)>> = (0..regions).map(|_| Vec::new()).collect();
    let mut next = base;
    let mut cross = 0u64;
    loop {
        // The head of each region's log resolves to its final key: a
        // provisional head was pushed by an *earlier* record of the
        // same region (push precedes dispatch, logs are in dispatch
        // order), which the merge already consumed — so the lookup
        // always succeeds.
        let mut best: Option<(Time, u64, usize)> = None;
        for (r, log) in logs.iter().enumerate() {
            if let Some(rec) = log.get(idx[r]) {
                let seq = if rec.seq >= base {
                    *maps[r].get(&rec.seq).expect("provisional resolves")
                } else {
                    rec.seq
                };
                if best.is_none_or(|(bat, bseq, _)| (rec.at, seq) < (bat, bseq)) {
                    best = Some((rec.at, seq, r));
                }
            }
        }
        let Some((_, _, r)) = best else { break };
        let pushes = std::mem::take(&mut logs[r][idx[r]].pushes);
        idx[r] += 1;
        // Replay this record's pushes against the global counter —
        // the exact numbers the sequential kernel would have assigned.
        for p in pushes {
            let fin = next;
            next += 1;
            match p {
                PushRec::Local { prov_seq } => {
                    maps[r].insert(prov_seq, fin);
                    remaps[r].push((prov_seq, fin));
                }
                PushRec::Cross { at, ev } => {
                    let dst = region_of.get(ev_target(&ev).0).copied().unwrap_or(0) as usize;
                    inserts[dst].push((at, fin, ev));
                    cross += 1;
                }
            }
        }
    }
    (next, remaps, inserts, cross)
}

/// Advance `sim` to `target` (events at exactly `target` included,
/// like `Sim::run_until`), splitting the work across up to `cores`
/// dataplane regions when the world allows it. The resulting state is
/// byte-identical to `Sim::run_until(target)` in every observable:
/// agent state, queue order, counters, clocks, RNG.
pub fn run_parallel_until(sim: &mut Sim, target: Time, cores: usize) -> ParallelOutcome {
    let serial = |sim: &mut Sim, reason: &'static str| {
        sim.run_until(target);
        ParallelOutcome::Serial { reason }
    };
    if cores < 2 {
        return serial(sim, "fewer than two cores");
    }
    if target <= sim.now() {
        return serial(sim, "empty span");
    }
    if let Err(reason) = precheck(sim, target) {
        return serial(sim, reason);
    }
    let Some(plan) = build_plan(sim, cores) else {
        return serial(sim, "partition collapsed");
    };

    // Split: keep a pristine copy for the violation path, then drain
    // the queue and hand every region a replica holding only the
    // events it owns.
    let pristine = sim.clone();
    let base0 = sim.inner.queue.next_ordinary_seq();
    let entries = sim.inner.queue.drain_entries();
    let regions = plan.regions;
    let mut replicas: Vec<Sim> = Vec::with_capacity(regions);
    for r in 0..regions {
        let mut rep = sim.clone();
        rep.inner.par = Some(Box::new(ParCtl {
            my_region: r as u32,
            region_of: plan.region_of.clone(),
            pushes: Vec::new(),
            violation: None,
        }));
        replicas.push(rep);
    }
    for (at, seq, ev) in entries {
        let r = plan.region_of.get(ev_target(&ev).0).copied().unwrap_or(0) as usize;
        replicas[r].inner.queue.push_with_seq(at, seq, ev);
    }
    let mut next_at: Vec<Option<Time>> = replicas
        .iter_mut()
        .map(|rep| rep.inner.queue.peek_time())
        .collect();

    enum RunResult {
        Finished {
            merged: Box<Sim>,
            base: u64,
            windows: u64,
            cross: u64,
        },
        Violated(&'static str),
    }

    let prefix_dispatched = sim.events_dispatched;
    let end_cap = Time::from_nanos(target.as_nanos() + 1);
    let result = std::thread::scope(|scope| {
        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(regions);
        let mut reply_rxs: Vec<Receiver<Reply>> = Vec::with_capacity(regions);
        let mut handles = Vec::with_capacity(regions);
        for rep in replicas {
            let (cmd_tx, cmd_rx) = channel::<Cmd>();
            let (reply_tx, reply_rx) = channel::<Reply>();
            cmd_txs.push(cmd_tx);
            reply_rxs.push(reply_rx);
            handles.push(scope.spawn(move || worker(rep, cmd_rx, reply_tx)));
        }
        let finish = |cmd_txs: &[Sender<Cmd>], handles: Vec<_>| -> Vec<Sim> {
            for tx in cmd_txs {
                let _ = tx.send(Cmd::Done);
            }
            handles
                .into_iter()
                .map(|h: std::thread::ScopedJoinHandle<'_, Sim>| h.join().expect("worker"))
                .collect()
        };

        let mut base = base0;
        let mut windows = 0u64;
        let mut cross_total = 0u64;
        while let Some(start) = next_at.iter().flatten().min().copied() {
            if start > target {
                break;
            }
            let end = match plan.lookahead {
                Some(l) => (start + l).min(end_cap),
                None => end_cap,
            };
            for tx in &cmd_txs {
                tx.send(Cmd::Window { end }).expect("worker alive");
            }
            let mut logs = Vec::with_capacity(regions);
            let mut violation = None;
            for rx in &reply_rxs {
                match rx.recv().expect("worker alive") {
                    Reply::Window { log, violation: v } => {
                        if violation.is_none() {
                            violation = v;
                        }
                        logs.push(log);
                    }
                    Reply::Barrier { .. } => unreachable!("window reply expected"),
                }
            }
            if let Some(v) = violation {
                finish(&cmd_txs, handles);
                return RunResult::Violated(v);
            }
            windows += 1;
            let (new_base, remaps, inserts, cross) =
                merge_window(logs, base, &plan.region_of, regions);
            base = new_base;
            cross_total += cross;
            let mut remaps = remaps.into_iter();
            let mut inserts = inserts.into_iter();
            for tx in &cmd_txs {
                tx.send(Cmd::Barrier {
                    remap: remaps.next().expect("per region"),
                    inserts: inserts.next().expect("per region"),
                    next_seq: base,
                })
                .expect("worker alive");
            }
            for (r, rx) in reply_rxs.iter().enumerate() {
                match rx.recv().expect("worker alive") {
                    Reply::Barrier { next_at: na } => next_at[r] = na,
                    Reply::Window { .. } => unreachable!("barrier reply expected"),
                }
            }
        }
        let finals = finish(&cmd_txs, handles);
        let merged = merge_replicas(finals, &plan, target, base, prefix_dispatched);
        RunResult::Finished {
            merged: Box::new(merged),
            base,
            windows,
            cross: cross_total,
        }
    });

    match result {
        RunResult::Violated(reason) => {
            *sim = pristine;
            sim.run_until(target);
            ParallelOutcome::Serial { reason }
        }
        RunResult::Finished {
            merged,
            base,
            windows,
            cross,
        } => {
            let _ = base;
            *sim = *merged;
            ParallelOutcome::Parallel {
                regions,
                windows,
                cross_events: cross,
            }
        }
    }
}

/// Reassemble one world from the region replicas: region 0's replica
/// is the base (control agents, shared frozen state, the tracer and
/// RNG — all provably identical across replicas); every other region
/// contributes its own agents, its remaining queue entries, and the
/// link/conn clocks it owns.
fn merge_replicas(
    finals: Vec<Sim>,
    plan: &PartitionPlan,
    target: Time,
    base: u64,
    prefix_dispatched: u64,
) -> Sim {
    let mut it = finals.into_iter();
    let mut merged = it.next().expect("region 0 replica");
    for (i, mut rep) in it.enumerate() {
        let r = (i + 1) as u32;
        for id in 0..rep.agents.len() {
            if plan.region_of.get(id).copied().unwrap_or(0) == r {
                merged.agents[id] = rep.agents[id].take();
            }
        }
        for (at, seq, ev) in rep.inner.queue.drain_entries() {
            merged.inner.queue.push_with_seq(at, seq, ev);
        }
        // Direction-owned transmitter horizons: busy[0] belongs to the
        // a→b sender's region, busy[1] to b→a's.
        for (li, l) in rep.inner.links.iter().enumerate() {
            let m = &mut merged.inner.links[li];
            if plan.region_of[l.a.agent.0] == r {
                m.busy[0] = l.busy[0];
            }
            if plan.region_of[l.b.agent.0] == r {
                m.busy[1] = l.busy[1];
            }
        }
        // Sender-side in-order delivery clocks, same ownership rule.
        for (ci, c) in rep.inner.conns.iter().enumerate() {
            let m = &mut merged.inner.conns[ci];
            if plan.region_of[c.ends[0].0] == r {
                m.deliver_clock[0] = c.deliver_clock[0];
            }
            if plan.region_of[c.ends[1].0] == r {
                m.deliver_clock[1] = c.deliver_clock[1];
            }
        }
        merged.events_dispatched += rep.events_dispatched - prefix_dispatched;
    }
    merged.inner.queue.set_next_ordinary_seq(base);
    merged.inner.now = target;
    merged.inner.par = None;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Agent, AgentId, Ctx, SimConfig};
    use crate::link::LinkProfile;
    use bytes::Bytes;
    use std::time::Duration;

    /// Deterministic chatter: echoes every frame back with a
    /// decremented TTL byte, logging arrivals; periodic timers keep
    /// fresh bursts flowing. Heavy cross-link traffic with no RNG —
    /// the workload shape the parallel kernel is built for.
    #[derive(Clone, Default)]
    struct Relay {
        ports: Vec<u32>,
        bursts: u32,
        log: Vec<(Time, u32, u8)>,
        timers: u32,
    }

    impl Agent for Relay {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for &p in &self.ports {
                ctx.send_frame(p, Bytes::from(vec![40u8]));
            }
            if self.bursts > 0 {
                ctx.schedule(Duration::from_millis(7), 0);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            self.timers += 1;
            for &p in &self.ports {
                ctx.send_frame(p, Bytes::from(vec![12u8]));
            }
            if self.timers < self.bursts {
                ctx.schedule(Duration::from_millis(7), 0);
            }
        }
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: u32, frame: Bytes) {
            let ttl = frame.first().copied().unwrap_or(0);
            self.log.push((ctx.now(), port, ttl));
            if ttl > 0 {
                ctx.send_frame(port, Bytes::from(vec![ttl - 1]));
            }
        }
    }

    /// A line of `n` relays; link `i` gets `latencies[i % len]`.
    fn line_sim(n: usize, latencies: &[Duration]) -> (Sim, Vec<AgentId>) {
        let mut sim = Sim::new(SimConfig {
            trace_level: TraceLevel::Off,
            ..Default::default()
        });
        let ids: Vec<AgentId> = (0..n)
            .map(|i| {
                let ports = if i == 0 || i == n - 1 {
                    vec![1]
                } else {
                    vec![1, 2]
                };
                sim.add_agent(
                    &format!("relay{i}"),
                    Box::new(Relay {
                        ports,
                        bursts: 3,
                        ..Default::default()
                    }),
                )
            })
            .collect();
        for i in 0..n - 1 {
            let lat = latencies[i % latencies.len()];
            // Right port of ids[i] is its last port; left port of
            // ids[i+1] is port 1.
            let a_port = if i == 0 { 1 } else { 2 };
            sim.add_link(
                (ids[i], a_port),
                (ids[i + 1], 1),
                LinkProfile::with_latency(lat),
            );
        }
        (sim, ids)
    }

    type Fingerprint = (Vec<Vec<(Time, u32, u8)>>, u64, Time, usize);

    fn fingerprint(sim: &Sim, ids: &[AgentId]) -> Fingerprint {
        (
            ids.iter()
                .map(|&id| sim.agent_as::<Relay>(id).unwrap().log.clone())
                .collect(),
            sim.events_dispatched(),
            sim.now(),
            sim.pending_events(),
        )
    }

    #[test]
    fn parallel_matches_sequential_on_a_line() {
        for cores in [2, 3, 4] {
            let (mut seq, ids) = line_sim(8, &[Duration::from_millis(1), Duration::from_millis(2)]);
            let (mut par, _) = line_sim(8, &[Duration::from_millis(1), Duration::from_millis(2)]);
            let target = Time::from_millis(400);
            seq.run_until(target);
            let out = run_parallel_until(&mut par, target, cores);
            assert!(out.is_parallel(), "cores={cores}: {out:?}");
            assert_eq!(
                fingerprint(&seq, &ids),
                fingerprint(&par, &ids),
                "cores={cores}"
            );
            // And the merged world keeps replaying identically.
            let tail = Time::from_millis(800);
            seq.run_until(tail);
            par.run_until(tail);
            assert_eq!(
                fingerprint(&seq, &ids),
                fingerprint(&par, &ids),
                "tail, cores={cores}"
            );
        }
    }

    #[test]
    fn parallel_run_can_be_windowed_repeatedly() {
        let (mut seq, ids) = line_sim(6, &[Duration::from_millis(1)]);
        let (mut par, _) = line_sim(6, &[Duration::from_millis(1)]);
        seq.run_until(Time::from_millis(300));
        for slice in 1..=6 {
            let t = Time::from_millis(50 * slice);
            run_parallel_until(&mut par, t, 3);
        }
        assert_eq!(fingerprint(&seq, &ids), fingerprint(&par, &ids));
    }

    #[test]
    fn zero_latency_link_merges_endpoints_into_one_region() {
        // Middle link has zero latency: its endpoints must share a
        // region, and the cut must still split the rest.
        let lats = [
            Duration::from_millis(1),
            Duration::from_millis(1),
            Duration::from_millis(1),
            Duration::ZERO,
            Duration::from_millis(1),
            Duration::from_millis(1),
            Duration::from_millis(1),
        ];
        let (sim, ids) = line_sim(8, &lats);
        let plan = build_plan(&sim, 4).expect("plan");
        assert_eq!(
            plan.region_of[ids[3].0], plan.region_of[ids[4].0],
            "zero-latency endpoints must co-reside"
        );
        assert!(plan.regions >= 3, "still splits: {} regions", plan.regions);
        assert_eq!(plan.lookahead, Some(Duration::from_millis(1)));
        // And the run stays byte-identical.
        let (mut seq, _) = line_sim(8, &lats);
        let (mut par, _) = line_sim(8, &lats);
        seq.run_until(Time::from_millis(200));
        let out = run_parallel_until(&mut par, Time::from_millis(200), 4);
        assert!(out.is_parallel(), "{out:?}");
        assert_eq!(fingerprint(&seq, &ids), fingerprint(&par, &ids));
    }

    #[test]
    fn all_zero_latency_collapses_to_serial() {
        let (mut sim, _) = line_sim(4, &[Duration::ZERO]);
        assert!(build_plan(&sim, 4).is_none());
        let out = run_parallel_until(&mut sim, Time::from_millis(50), 4);
        assert_eq!(
            out,
            ParallelOutcome::Serial {
                reason: "partition collapsed"
            }
        );
    }

    #[test]
    fn reserved_pending_falls_back_serial() {
        let (mut sim, ids) = line_sim(4, &[Duration::from_millis(1)]);
        sim.schedule_timer_reserved(ids[0], Duration::from_millis(30), 9);
        let out = run_parallel_until(&mut sim, Time::from_millis(100), 2);
        assert_eq!(
            out,
            ParallelOutcome::Serial {
                reason: "reserved events pending"
            }
        );
        assert_eq!(sim.now(), Time::from_millis(100));
    }

    #[test]
    fn violation_mid_window_reruns_serially_and_identically() {
        /// Relay that suddenly needs the shared RNG mid-run — the
        /// protocol must throw the replicas away and rerun serially.
        #[derive(Clone, Default)]
        struct RngPoker {
            draws: Vec<u64>,
        }
        impl Agent for RngPoker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(Duration::from_millis(60), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                use rand::RngCore;
                self.draws.push(ctx.rng().next_u64());
            }
        }
        fn build() -> (Sim, Vec<AgentId>, AgentId) {
            let (mut sim, ids) = line_sim(6, &[Duration::from_millis(1)]);
            let poker = sim.add_agent("poker", Box::new(RngPoker::default()));
            (sim, ids, poker)
        }
        let (mut seq, ids, poker_s) = build();
        let (mut par, _, poker_p) = build();
        let target = Time::from_millis(150);
        seq.run_until(target);
        let out = run_parallel_until(&mut par, target, 3);
        assert_eq!(out, ParallelOutcome::Serial { reason: "rng" });
        assert_eq!(fingerprint(&seq, &ids), fingerprint(&par, &ids));
        assert_eq!(
            seq.agent_as::<RngPoker>(poker_s).unwrap().draws,
            par.agent_as::<RngPoker>(poker_p).unwrap().draws
        );
    }

    #[test]
    fn events_at_exactly_target_are_dispatched() {
        #[derive(Clone, Default)]
        struct EdgeTimer {
            fired: Vec<Time>,
        }
        impl Agent for EdgeTimer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(Duration::from_millis(100), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                self.fired.push(ctx.now());
            }
        }
        let (mut sim, _) = line_sim(4, &[Duration::from_millis(1)]);
        let e = sim.add_agent("edge", Box::new(EdgeTimer::default()));
        let out = run_parallel_until(&mut sim, Time::from_millis(100), 2);
        assert!(out.is_parallel(), "{out:?}");
        assert_eq!(
            sim.agent_as::<EdgeTimer>(e).unwrap().fired,
            vec![Time::from_millis(100)]
        );
        assert_eq!(sim.now(), Time::from_millis(100));
    }
}
