//! The simulation event queue.
//!
//! A binary min-heap keyed by `(time, sequence)`. The sequence number is
//! assigned at insertion and breaks ties between events scheduled for
//! the same instant, which keeps dispatch order — and therefore every
//! downstream RNG draw — fully deterministic.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the event queue. `T` is the kernel's event payload.
struct Entry<T> {
    at: Time,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at absolute time `at`.
    pub fn push(&mut self, at: Time, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(3), "c");
        q.push(Time::from_secs(1), "a");
        q.push(Time::from_secs(2), "b");
        assert_eq!(q.pop(), Some((Time::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((Time::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((Time::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_secs(5), ());
        q.push(Time::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Time::ZERO, 1);
        q.push(Time::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(10), 10);
        q.push(Time::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_secs(5), 5);
        q.push(Time::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
