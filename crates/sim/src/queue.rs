//! The simulation event queue: a tick wheel with a heap overflow.
//!
//! Every entry is keyed by `(time, sequence)`. The sequence number is
//! assigned at insertion and breaks ties between events scheduled for
//! the same instant, which keeps dispatch order — and therefore every
//! downstream RNG draw — fully deterministic.
//!
//! ## Structure
//!
//! Most of a simulation's events live in the *near* future: frame
//! deliveries a few link latencies out, the controller's 25/50 ms
//! drain and FIB-flush ticks, sub-second protocol timers. A single
//! `BinaryHeap` pays `O(log n)` pointer-chasing for each of them
//! against the whole future-event set. Instead, the near future — a
//! [`WHEEL_SPAN`]-wide window starting at the last dispatched instant —
//! is a circular array of buckets ([`MIN_WHEEL_SLOTS`] at first,
//! doubling on demand up to [`MAX_WHEEL_SLOTS`]), each covering
//! 2^[`SLOT_NS_SHIFT`] ns. Pushing into the window indexes a bucket
//! directly; popping scans an occupancy bitmap for the first live
//! bucket. Buckets are `Vec`s sorted lazily (descending) on first
//! read, so a same-instant burst costs one sort and then O(1) pops
//! from the back — cheaper than per-entry heap sifting at the burst
//! sizes this simulation produces. Events beyond the window (OSPF dead
//! intervals, scheduled faults tens of seconds out) go to an overflow
//! `BinaryHeap`, which stays small because the hot traffic never
//! touches it; pops compare the wheel's minimum against the overflow's
//! and take the smaller, so ordering is *exactly* the `(time, seq)`
//! total order a single heap would produce (see the equivalence
//! tests).

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of a wheel slot's width in nanoseconds (2^18 ≈ 262 µs) —
/// narrower than the 1 ms control-channel latency, so frames scheduled
/// from the currently-draining instant land in *later* slots and
/// rarely dirty a sorted slot mid-drain.
const SLOT_NS_SHIFT: u32 = 18;
/// Initial number of wheel slots (a power of two): ≈ 134 ms of window.
/// Corpus sweeps build one simulator per matrix cell — and a fat-tree
/// cell holds hundreds of switch agents each owning timer state — so
/// the queue starts small and [grows](EventQueue::grow_to_cover) only
/// when a push actually needs a wider window.
const MIN_WHEEL_SLOTS: usize = 512;
/// Maximum number of wheel slots; must be a power of two.
const MAX_WHEEL_SLOTS: usize = 8192;
/// The wheel's maximum window width: ≈ 2.15 s of simulated time.
const WHEEL_SPAN: u64 = (MAX_WHEEL_SLOTS as u64) << SLOT_NS_SHIFT;

/// Sequence numbers below this bound are handed out by
/// [`EventQueue::push_reserved`]; ordinary pushes start above it. A
/// reserved entry therefore sorts *before* every ordinary entry at the
/// same instant, no matter when either was scheduled — which is what
/// lets a forked scenario inject a fault timer mid-run and still match
/// a cold run that scheduled the same timer at t=0 (see
/// `rf-core::scenario::Snapshot`).
const RESERVED_SEQS: u64 = 1 << 32;

/// An entry in the event queue. `T` is the kernel's event payload.
#[derive(Clone)]
struct Entry<T> {
    at: Time,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Where the queue's current minimum entry lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Loc {
    /// At the back of `wheel[slot]` once that slot is sorted.
    Wheel {
        slot: u32,
    },
    Overflow,
}

/// One wheel bucket: entries sorted descending by `(at, seq)` when
/// `sorted` holds, so the minimum pops from the back in O(1). A push
/// that lands out of order just clears the flag; the next read
/// re-sorts once.
#[derive(Clone)]
struct Slot<T> {
    entries: Vec<Entry<T>>,
    sorted: bool,
}

impl<T> Slot<T> {
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.entries
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
            self.sorted = true;
        }
    }
}

/// Deterministic future-event list (tick wheel + overflow heap).
#[derive(Clone)]
pub struct EventQueue<T> {
    /// Near-future buckets, indexed by
    /// `(at >> SLOT_NS_SHIFT) % wheel.len()`. The length is a power of
    /// two between [`MIN_WHEEL_SLOTS`] and [`MAX_WHEEL_SLOTS`].
    wheel: Vec<Slot<T>>,
    /// One bit per non-empty wheel slot (`wheel.len() / 64` words).
    occupied: Vec<u64>,
    /// Slot-aligned start of the wheel window. Invariant: every wheel
    /// entry's time lies in `[window_start, window_start + span())`,
    /// so the global slot mapping never collides across window cycles.
    window_start: u64,
    /// Events at or beyond the window's end (and the rare push into
    /// the past, which the kernel never does but the API allows).
    overflow: BinaryHeap<Entry<T>>,
    /// Memoized minimum `(time, seq, location)` — the kernel peeks
    /// before every pop, and without this each of those would scan the
    /// occupancy bitmap again. Kept exact: a push can only *lower* the
    /// minimum (compared directly), a pop invalidates it.
    cached_min: Option<(Time, u64, Loc)>,
    next_seq: u64,
    /// Next sequence in the reserved (always-first-at-an-instant) lane;
    /// stays below [`RESERVED_SEQS`].
    next_reserved: u64,
    len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..MIN_WHEEL_SLOTS)
                .map(|_| Slot {
                    entries: Vec::new(),
                    sorted: true,
                })
                .collect(),
            occupied: vec![0; MIN_WHEEL_SLOTS / 64],
            window_start: 0,
            overflow: BinaryHeap::new(),
            cached_min: None,
            next_seq: RESERVED_SEQS,
            next_reserved: 0,
            len: 0,
        }
    }

    /// Current width of the wheel window in nanoseconds.
    fn span(&self) -> u64 {
        (self.wheel.len() as u64) << SLOT_NS_SHIFT
    }

    /// Double the slot count until the window covers `offset` (or the
    /// wheel hits [`MAX_WHEEL_SLOTS`]), re-bucketing existing entries
    /// under the widened slot mapping. `cached_min` may name a wheel
    /// slot by index, so it is invalidated.
    fn grow_to_cover(&mut self, offset: u64) {
        let mut slots = self.wheel.len();
        while slots < MAX_WHEEL_SLOTS && (slots as u64) << SLOT_NS_SHIFT <= offset {
            slots *= 2;
        }
        if slots == self.wheel.len() {
            return;
        }
        let old: Vec<Entry<T>> = self
            .wheel
            .iter_mut()
            .flat_map(|s| s.entries.drain(..))
            .collect();
        self.wheel = (0..slots)
            .map(|_| Slot {
                entries: Vec::new(),
                sorted: true,
            })
            .collect();
        self.occupied = vec![0; slots / 64];
        for entry in old {
            let slot_idx = ((entry.at.as_nanos() >> SLOT_NS_SHIFT) as usize) & (slots - 1);
            let slot = &mut self.wheel[slot_idx];
            if let Some(last) = slot.entries.last() {
                if (last.at, last.seq) < (entry.at, entry.seq) {
                    slot.sorted = false;
                }
            }
            slot.entries.push(entry);
            self.occupied[slot_idx / 64] |= 1 << (slot_idx % 64);
        }
        self.cached_min = None;
    }

    /// Schedule `payload` at absolute time `at`.
    pub fn push(&mut self, at: Time, payload: T) {
        self.push_seq(at, payload);
    }

    /// Like [`push`](Self::push), but returns the sequence number the
    /// entry was assigned. The parallel kernel logs these to
    /// reconstruct the global push order at window barriers (see the
    /// `partition` module in `rf-sim`).
    pub(crate) fn push_seq(&mut self, at: Time, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_with_seq(at, seq, payload);
        seq
    }

    /// Schedule `payload` at `at` in the reserved lane: it dispatches
    /// before every [`push`](Self::push)ed entry at the same instant,
    /// and reserved entries order among themselves by reservation
    /// order. Insertion *time* is irrelevant to the resulting order,
    /// which is what checkpoint/fork relies on.
    pub fn push_reserved(&mut self, at: Time, payload: T) {
        let seq = self.next_reserved;
        assert!(seq < RESERVED_SEQS, "reserved sequence lane exhausted");
        self.next_reserved += 1;
        self.push_with_seq(at, seq, payload);
    }

    /// Insert an entry under an externally assigned sequence number
    /// without touching either counter. The parallel kernel uses this
    /// to distribute a drained queue across region replicas and to
    /// deliver cross-region events under their barrier-finalized
    /// sequence numbers.
    pub(crate) fn push_with_seq(&mut self, at: Time, seq: u64, payload: T) {
        let t = at.as_nanos();
        if self.len == 0 {
            // Empty queue: re-anchor the window so a long quiet gap
            // doesn't strand near-future pushes in the overflow.
            self.window_start = (t >> SLOT_NS_SHIFT) << SLOT_NS_SHIFT;
        }
        self.len += 1;
        if t >= self.window_start {
            let offset = t - self.window_start;
            // In the full window but past the current capacity: widen
            // the wheel rather than spill to overflow, so routing (and
            // memory ceiling) match a fixed max-size wheel.
            if offset >= self.span() && offset < WHEEL_SPAN {
                self.grow_to_cover(offset);
            }
        }
        let entry = Entry { at, seq, payload };
        let loc = if t >= self.window_start && t - self.window_start < self.span() {
            let slot_idx = ((t >> SLOT_NS_SHIFT) as usize) & (self.wheel.len() - 1);
            let slot = &mut self.wheel[slot_idx];
            // Appending keeps descending order only if the new key is
            // smaller than the current tail's.
            if let Some(last) = slot.entries.last() {
                if (last.at, last.seq) < (at, seq) {
                    slot.sorted = false;
                }
            }
            slot.entries.push(entry);
            self.occupied[slot_idx / 64] |= 1 << (slot_idx % 64);
            Loc::Wheel {
                slot: slot_idx as u32,
            }
        } else {
            self.overflow.push(entry);
            Loc::Overflow
        };
        if let Some(min) = self.cached_min {
            if (at, seq) < (min.0, min.1) {
                self.cached_min = Some((at, seq, loc));
            }
        }
    }

    /// First occupied wheel slot in circular time order from the
    /// window start — the slot holding the wheel's earliest entry.
    fn first_occupied_slot(&self) -> Option<usize> {
        let words = self.occupied.len();
        let start = ((self.window_start >> SLOT_NS_SHIFT) as usize) & (self.wheel.len() - 1);
        let (word0, bit0) = (start / 64, start % 64);
        // Scan the partial first word, the remaining words wrapping
        // around, then the first word's low bits again.
        let masked = self.occupied[word0] & (!0u64 << bit0);
        if masked != 0 {
            return Some(word0 * 64 + masked.trailing_zeros() as usize);
        }
        for i in 1..words {
            let w = (word0 + i) % words;
            if self.occupied[w] != 0 {
                return Some(w * 64 + self.occupied[w].trailing_zeros() as usize);
            }
        }
        let low = self.occupied[word0] & !(!0u64 << bit0);
        if low != 0 {
            return Some(word0 * 64 + low.trailing_zeros() as usize);
        }
        None
    }

    /// Key of the earliest pending event: wheel minimum vs overflow
    /// minimum, whichever is smaller in `(time, seq)` order.
    fn peek_key(&mut self) -> Option<(Time, u64, Loc)> {
        if let Some(min) = self.cached_min {
            return Some(min);
        }
        let key = self.compute_min();
        self.cached_min = key;
        key
    }

    fn compute_min(&mut self) -> Option<(Time, u64, Loc)> {
        let wheel_min = self.first_occupied_slot().map(|s| {
            let slot = &mut self.wheel[s];
            slot.ensure_sorted();
            let e = slot.entries.last().expect("occupied slot is non-empty");
            (e.at, e.seq, Loc::Wheel { slot: s as u32 })
        });
        let over_min = self.overflow.peek().map(|e| (e.at, e.seq, Loc::Overflow));
        match (wheel_min, over_min) {
            (None, None) => None,
            (Some(w), None) => Some(w),
            (None, Some(o)) => Some(o),
            (Some(w), Some(o)) => {
                if (w.0, w.1) <= (o.0, o.1) {
                    Some(w)
                } else {
                    Some(o)
                }
            }
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.pop_entry().map(|(at, _seq, payload)| (at, payload))
    }

    /// Like [`pop`](Self::pop), but also returns the entry's sequence
    /// number — the key the parallel kernel's dispatch log records.
    pub(crate) fn pop_entry(&mut self) -> Option<(Time, u64, T)> {
        let (_at, _seq, loc) = self.peek_key()?;
        self.cached_min = None;
        let entry = match loc {
            Loc::Wheel { slot } => {
                let slot_idx = slot as usize;
                let slot = &mut self.wheel[slot_idx];
                // A push after the peek may have dirtied the slot; the
                // cached (time, seq) minimum stays correct either way,
                // and sorting puts it back at the tail.
                slot.ensure_sorted();
                let e = slot.entries.pop().expect("peeked wheel slot");
                if slot.entries.is_empty() {
                    self.occupied[slot_idx / 64] &= !(1 << (slot_idx % 64));
                }
                e
            }
            Loc::Overflow => self.overflow.pop().expect("peeked overflow"),
        };
        self.len -= 1;
        // Advance the window to the dispatched instant — but never
        // backward (an overflow pop of a before-the-window event must
        // not strand wheel entries outside the window): forward-only
        // keeps every wheel entry inside `[window_start, +SPAN)`.
        let aligned = (entry.at.as_nanos() >> SLOT_NS_SHIFT) << SLOT_NS_SHIFT;
        self.window_start = self.window_start.max(aligned);
        Some((entry.at, entry.seq, entry.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.peek_key().map(|(at, _, _)| at)
    }

    /// `(time, seq)` key of the earliest pending event.
    pub(crate) fn peek_entry_key(&mut self) -> Option<(Time, u64)> {
        self.peek_key().map(|(at, seq, _)| (at, seq))
    }

    /// The next ordinary sequence number — the split-time base the
    /// parallel kernel rebases each region's provisional sequences
    /// against.
    pub(crate) fn next_ordinary_seq(&self) -> u64 {
        self.next_seq
    }

    /// Overwrite the ordinary sequence counter. Barrier finalization
    /// rebases every region replica's counter to the merged global
    /// value, so the next window's provisional numbers never collide
    /// with an already-finalized one.
    pub(crate) fn set_next_ordinary_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }

    /// True when any pending entry sits in the reserved lane (chaos
    /// fault timers, fork-injected schedules). The parallel kernel
    /// refuses to split such a queue: reserved entries sort before
    /// ordinary ones at the same instant, a property the provisional
    /// renumbering scheme does not model.
    pub(crate) fn has_reserved_pending(&self) -> bool {
        self.wheel
            .iter()
            .any(|s| s.entries.iter().any(|e| e.seq < RESERVED_SEQS))
            || self.overflow.iter().any(|e| e.seq < RESERVED_SEQS)
    }

    /// Remove every pending entry, returning `(time, seq, payload)`
    /// triples in unspecified order. Both sequence counters are left
    /// untouched, so the entries can be redistributed into replica
    /// queues via [`push_with_seq`](Self::push_with_seq).
    pub(crate) fn drain_entries(&mut self) -> Vec<(Time, u64, T)> {
        let mut out = Vec::with_capacity(self.len);
        for slot in &mut self.wheel {
            for e in slot.entries.drain(..) {
                out.push((e.at, e.seq, e.payload));
            }
            slot.sorted = true;
        }
        for word in &mut self.occupied {
            *word = 0;
        }
        for e in std::mem::take(&mut self.overflow).into_vec() {
            out.push((e.at, e.seq, e.payload));
        }
        self.cached_min = None;
        self.len = 0;
        out
    }

    /// Rewrite sequence numbers in place: every entry whose seq is a
    /// key of `map` takes the mapped value. The caller must guarantee
    /// the map is *order-preserving* over the entries it touches and
    /// collision-free against the ones it does not (the barrier
    /// finalization map is both, by construction) — that keeps slot
    /// sort order and the overflow heap's relative order intact, so
    /// only the memoized minimum needs invalidating.
    pub(crate) fn remap_seqs(&mut self, map: &std::collections::HashMap<u64, u64>) {
        for slot in &mut self.wheel {
            for e in &mut slot.entries {
                if let Some(&f) = map.get(&e.seq) {
                    e.seq = f;
                }
            }
        }
        let mut over = std::mem::take(&mut self.overflow).into_vec();
        for e in &mut over {
            if let Some(&f) = map.get(&e.seq) {
                e.seq = f;
            }
        }
        self.overflow = BinaryHeap::from(over);
        self.cached_min = None;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(3), "c");
        q.push(Time::from_secs(1), "a");
        q.push(Time::from_secs(2), "b");
        assert_eq!(q.pop(), Some((Time::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((Time::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((Time::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn reserved_entries_sort_first_at_an_instant() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(1);
        q.push(t, "normal-0");
        q.push_reserved(t, "reserved-0");
        q.push(t, "normal-1");
        q.push_reserved(t, "reserved-1");
        // Reserved entries beat ordinary ones at the same instant
        // regardless of insertion order, and order among themselves by
        // reservation order.
        assert_eq!(q.pop(), Some((t, "reserved-0")));
        assert_eq!(q.pop(), Some((t, "reserved-1")));
        assert_eq!(q.pop(), Some((t, "normal-0")));
        assert_eq!(q.pop(), Some((t, "normal-1")));
        // Time still dominates: an earlier ordinary entry beats a later
        // reserved one.
        q.push_reserved(Time::from_secs(3), "late-reserved");
        q.push(Time::from_secs(2), "early-normal");
        assert_eq!(q.pop(), Some((Time::from_secs(2), "early-normal")));
        assert_eq!(q.pop(), Some((Time::from_secs(3), "late-reserved")));
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_secs(5), ());
        q.push(Time::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Time::ZERO, 1);
        q.push(Time::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(10), 10);
        q.push(Time::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_secs(5), 5);
        q.push(Time::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn far_future_crosses_overflow_and_back() {
        // An event far beyond the wheel window must pop in its right
        // place relative to near events pushed before and after it.
        let mut q = EventQueue::new();
        q.push(Time::from_secs(60), "far");
        q.push(Time::from_millis(1), "near-1");
        q.push(Time::from_millis(2), "near-2");
        assert_eq!(q.pop().unwrap().1, "near-1");
        // After the wheel advances, a near-the-far-event push is
        // within a *later* window; both orders must still hold.
        q.push(Time::from_secs(59), "late-but-earlier");
        assert_eq!(q.pop().unwrap().1, "near-2");
        assert_eq!(q.pop().unwrap().1, "late-but-earlier");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_grows_on_demand_and_stays_ordered() {
        let mut q = EventQueue::new();
        assert_eq!(q.wheel.len(), MIN_WHEEL_SLOTS);
        // Fill the minimal window, then push progressively farther out
        // so the wheel must re-bucket live entries as it doubles.
        let mut expected = Vec::new();
        for i in 0..64u64 {
            let at = Time::from_nanos(i * ((MIN_WHEEL_SLOTS as u64) << SLOT_NS_SHIFT) / 64);
            q.push(at, i);
            expected.push((at, i));
        }
        let min_span = (MIN_WHEEL_SLOTS as u64) << SLOT_NS_SHIFT;
        for i in 64..128u64 {
            let at = Time::from_nanos(min_span + (i - 64) * (WHEEL_SPAN - min_span) / 64);
            q.push(at, i);
            expected.push((at, i));
        }
        assert_eq!(q.wheel.len(), MAX_WHEEL_SLOTS);
        assert_eq!(q.occupied.len(), MAX_WHEEL_SLOTS / 64);
        // Beyond the maximum span the overflow heap still catches it.
        q.push(Time::from_nanos(WHEEL_SPAN * 3), 128);
        expected.push((Time::from_nanos(WHEEL_SPAN * 3), 128));
        assert_eq!(q.wheel.len(), MAX_WHEEL_SLOTS);
        expected.sort_by_key(|&(at, i)| (at, i));
        for want in expected {
            assert_eq!(q.pop(), Some(want));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn growth_preserves_cached_min_correctness() {
        // Peek (priming the memoized minimum, which names a wheel slot
        // index), then force a growth that shifts slot indices; the
        // next pop must still return the true minimum.
        let mut q = EventQueue::new();
        q.push(Time::from_millis(1), 1);
        q.push(Time::from_millis(2), 2);
        assert_eq!(q.peek_time(), Some(Time::from_millis(1)));
        q.push(Time::from_millis(500), 3); // beyond the 134 ms minimal window
        assert!(q.wheel.len() > MIN_WHEEL_SLOTS);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn window_reanchors_after_drain() {
        let mut q = EventQueue::new();
        q.push(Time::from_millis(5), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        // Hours later, near-future traffic resumes; the window must
        // re-anchor so ordering (and the wheel fast path) still work.
        let base = Time::from_secs(7200);
        q.push(base + std::time::Duration::from_millis(2), 3);
        q.push(base + std::time::Duration::from_millis(1), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    /// The pre-overhaul queue: one `BinaryHeap` over the same entries.
    /// The equivalence tests drive it in lockstep with the tick wheel.
    struct ReferenceQueue<T> {
        heap: BinaryHeap<Entry<T>>,
        next_seq: u64,
    }

    impl<T> ReferenceQueue<T> {
        fn new() -> Self {
            ReferenceQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }
        fn push(&mut self, at: Time, payload: T) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, payload });
        }
        fn pop(&mut self) -> Option<(Time, T)> {
            self.heap.pop().map(|e| (e.at, e.payload))
        }
        fn peek_time(&self) -> Option<Time> {
            self.heap.peek().map(|e| e.at)
        }
    }

    /// Tiny deterministic PRNG so the equivalence drive needs no seeds
    /// from outside (xorshift64*).
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    /// Drive both queues with an identical random push/pop sequence
    /// and assert identical pop streams. Times mix sub-slot jitter,
    /// same-instant ties, whole-window jumps and far-future spikes —
    /// every path between wheel and overflow.
    fn equivalence_drive(seed: u64, ops: usize, monotonic: bool) {
        let mut wheel = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut rng = XorShift(seed | 1);
        let mut id = 0u64;
        let mut floor = 0u64; // pops so far never exceed pushes ≥ floor
        for _ in 0..ops {
            let roll = rng.next() % 100;
            if roll < 60 || wheel.is_empty() {
                let jitter = match rng.next() % 5 {
                    0 => 0,                                         // exact tie with floor
                    1 => rng.next() % 1_000,                        // sub-microsecond
                    2 => rng.next() % 40_000_000,                   // within a few slots
                    3 => rng.next() % WHEEL_SPAN,                   // anywhere in window
                    _ => WHEEL_SPAN + rng.next() % 100_000_000_000, // overflow
                };
                let base = if monotonic { floor } else { 0 };
                let at = Time::from_nanos(base.saturating_add(jitter));
                wheel.push(at, id);
                reference.push(at, id);
                id += 1;
            } else {
                assert_eq!(wheel.peek_time(), reference.peek_time());
                let got = wheel.pop();
                let want = reference.pop();
                match (&got, &want) {
                    (Some((at, v)), Some((rat, rv))) => {
                        assert_eq!((at, v), (rat, rv));
                        if monotonic {
                            floor = at.as_nanos();
                        }
                    }
                    _ => assert_eq!(got.is_none(), want.is_none()),
                }
                assert_eq!(wheel.len(), reference.heap.len());
            }
        }
        // Drain both and compare the full remaining order.
        loop {
            let got = wheel.pop();
            let want = reference.pop();
            assert_eq!(got.is_some(), want.is_some());
            match (got, want) {
                (Some(g), Some(w)) => assert_eq!(g, w),
                _ => break,
            }
        }
        assert!(wheel.is_empty());
    }

    #[test]
    fn equivalence_with_reference_heap_kernel_like() {
        // Monotonic pushes (never before the last pop), as the kernel
        // schedules: 16 seeds × 4000 ops.
        for seed in 0..16 {
            equivalence_drive(0xA11CE + seed, 4000, true);
        }
    }

    #[test]
    fn equivalence_with_reference_heap_unrestricted() {
        // Fully random times, including pushes into the "past" (the
        // raw queue API allows them; they ride the overflow heap).
        for seed in 0..16 {
            equivalence_drive(0xB0B + seed, 4000, false);
        }
    }

    #[test]
    fn equivalence_same_instant_bursts() {
        // Heavy tie traffic: many events at identical instants must
        // pop in exact insertion order from both implementations.
        let mut wheel = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut rng = XorShift(0xDEAD_BEEF);
        for i in 0..2000u64 {
            let at = Time::from_millis(25 * (rng.next() % 8));
            wheel.push(at, i);
            reference.push(at, i);
        }
        for _ in 0..2000 {
            assert_eq!(wheel.pop(), reference.pop());
        }
    }
}
