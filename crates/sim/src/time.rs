//! Simulated time: a monotonically increasing nanosecond counter.
//!
//! All protocol timers in the reproduction (OSPF hello/dead intervals,
//! LLDP probe periods, RPC retransmission, VM boot delays, video frame
//! pacing) are expressed as [`std::time::Duration`] offsets from the
//! current [`Time`], so experiment results are independent of wall-clock
//! speed and host load — unlike the paper's testbed measurements.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An absolute instant in simulated time, in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);

    /// Largest representable instant; used as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: Time) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add of a duration.
    pub fn saturating_add(self, d: Duration) -> Time {
        // In u64 throughout: `Duration::as_nanos` returns u128, and the
        // 128-bit multiply showed up in profiles of the hot path (every
        // schedule and every link-busy update lands here). A duration
        // whose seconds alone overflow u64 nanoseconds saturates, which
        // is what the u128 path produced too.
        let d_nanos = match d.as_secs().checked_mul(1_000_000_000) {
            Some(s) => s.saturating_add(u64::from(d.subsec_nanos())),
            None => u64::MAX,
        };
        Time(self.0.saturating_add(d_nanos))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1_000_000_000;
        let millis = (self.0 % 1_000_000_000) / 1_000_000;
        write!(f, "{secs}.{millis:03}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrip() {
        assert_eq!(Time::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(Time::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(Time::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn add_duration() {
        let t = Time::from_secs(1) + Duration::from_millis(250);
        assert_eq!(t.as_millis(), 1250);
    }

    #[test]
    fn since_saturates() {
        let a = Time::from_secs(1);
        let b = Time::from_secs(5);
        assert_eq!(b.since(a), Duration::from_secs(4));
        assert_eq!(a.since(b), Duration::ZERO);
    }

    #[test]
    fn sub_is_since() {
        let a = Time::from_millis(100);
        let b = Time::from_millis(350);
        assert_eq!(b - a, Duration::from_millis(250));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        let t = Time::MAX.saturating_add(Duration::from_secs(10));
        assert_eq!(t, Time::MAX);
    }

    #[test]
    fn display_format() {
        assert_eq!(Time::from_millis(12345).to_string(), "12.345s");
        assert_eq!(Time::ZERO.to_string(), "0.000s");
    }

    #[test]
    fn ordering() {
        assert!(Time::from_secs(1) < Time::from_secs(2));
        assert!(Time::ZERO < Time::MAX);
    }
}
