//! Structured tracing and metric counters for simulations.
//!
//! The GUI timeline (red/green switch states in the paper's demo), the
//! experiment harnesses and the integration tests all consume the trace
//! stream; counters feed the benchmark reports.

use crate::time::Time;
use std::collections::BTreeMap;
use std::fmt;

/// Verbosity filter for the tracer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum TraceLevel {
    /// Record nothing.
    Off,
    /// Milestones only: agent lifecycle, configuration completions.
    #[default]
    Info,
    /// Per-message events (PACKET_IN, FLOW_MOD, RPC calls).
    Debug,
    /// Per-frame dataplane events. Very verbose.
    Trace,
}

/// A single trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub at: Time,
    pub level: TraceLevel,
    /// Name of the agent that emitted the event (or "sim" for the kernel).
    pub source: String,
    /// Event category, e.g. `"of.packet_in"`, `"rpc.call"`, `"vm.created"`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {:<18} {:<22} {}",
            self.at.to_string(),
            self.source,
            self.kind,
            self.detail
        )
    }
}

/// Event sink plus named monotonic counters.
#[derive(Default)]
pub struct Tracer {
    level: TraceLevel,
    events: Vec<TraceEvent>,
    counters: BTreeMap<String, u64>,
    /// Cap on stored events; older events are dropped beyond this.
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    pub fn new(level: TraceLevel) -> Self {
        Tracer {
            level,
            events: Vec::new(),
            counters: BTreeMap::new(),
            capacity: 1_000_000,
            dropped: 0,
        }
    }

    pub fn level(&self) -> TraceLevel {
        self.level
    }

    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// Limit stored events (counters are unaffected).
    pub fn set_capacity(&mut self, cap: usize) {
        self.capacity = cap;
    }

    /// Record an event if `level` passes the filter.
    pub fn emit(&mut self, at: Time, level: TraceLevel, source: &str, kind: &str, detail: String) {
        if level == TraceLevel::Off || level > self.level {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            at,
            level,
            source: source.to_string(),
            kind: kind.to_string(),
            detail,
        });
    }

    /// Increment a named counter (always recorded, regardless of level).
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose `kind` starts with `prefix`.
    pub fn events_with_kind<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.kind.starts_with(prefix))
    }

    /// Time of the first event matching `prefix`, if any.
    pub fn first_time_of(&self, prefix: &str) -> Option<Time> {
        self.events_with_kind(prefix).next().map(|e| e.at)
    }

    /// Time of the last event matching `prefix`, if any.
    pub fn last_time_of(&self, prefix: &str) -> Option<Time> {
        self.events_with_kind(prefix).last().map(|e| e.at)
    }

    /// Number of events silently dropped after hitting capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tr: &mut Tracer, s: u64, kind: &str) {
        tr.emit(
            Time::from_secs(s),
            TraceLevel::Info,
            "t",
            kind,
            String::new(),
        );
    }

    #[test]
    fn level_filtering() {
        let mut tr = Tracer::new(TraceLevel::Info);
        tr.emit(Time::ZERO, TraceLevel::Debug, "a", "x", "hidden".into());
        tr.emit(Time::ZERO, TraceLevel::Info, "a", "y", "shown".into());
        assert_eq!(tr.events().len(), 1);
        assert_eq!(tr.events()[0].kind, "y");
    }

    #[test]
    fn off_records_nothing() {
        let mut tr = Tracer::new(TraceLevel::Off);
        tr.emit(Time::ZERO, TraceLevel::Info, "a", "x", String::new());
        assert!(tr.events().is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let mut tr = Tracer::new(TraceLevel::Off);
        tr.count("of.flow_mod", 1);
        tr.count("of.flow_mod", 2);
        assert_eq!(tr.counter("of.flow_mod"), 3);
        assert_eq!(tr.counter("missing"), 0);
    }

    #[test]
    fn kind_prefix_query() {
        let mut tr = Tracer::new(TraceLevel::Info);
        ev(&mut tr, 1, "vm.created");
        ev(&mut tr, 2, "vm.configured");
        ev(&mut tr, 3, "of.packet_in");
        assert_eq!(tr.events_with_kind("vm.").count(), 2);
        assert_eq!(tr.first_time_of("vm."), Some(Time::from_secs(1)));
        assert_eq!(tr.last_time_of("vm."), Some(Time::from_secs(2)));
        assert_eq!(tr.first_time_of("bgp."), None);
    }

    #[test]
    fn capacity_drops_excess() {
        let mut tr = Tracer::new(TraceLevel::Info);
        tr.set_capacity(2);
        ev(&mut tr, 1, "a");
        ev(&mut tr, 2, "b");
        ev(&mut tr, 3, "c");
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.dropped(), 1);
    }

    #[test]
    fn display_renders() {
        let e = TraceEvent {
            at: Time::from_millis(1500),
            level: TraceLevel::Info,
            source: "sw1".into(),
            kind: "of.hello".into(),
            detail: "v1".into(),
        };
        let s = e.to_string();
        assert!(s.contains("1.500s"));
        assert!(s.contains("of.hello"));
    }
}
