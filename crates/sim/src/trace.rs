//! Structured tracing and metric counters for simulations.
//!
//! The GUI timeline (red/green switch states in the paper's demo), the
//! experiment harnesses and the integration tests all consume the trace
//! stream; counters feed the benchmark reports.

use crate::time::Time;
use std::collections::BTreeMap;
use std::fmt;

/// Verbosity filter for the tracer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum TraceLevel {
    /// Record nothing.
    Off,
    /// Milestones only: agent lifecycle, configuration completions.
    #[default]
    Info,
    /// Per-message events (PACKET_IN, FLOW_MOD, RPC calls).
    Debug,
    /// Per-frame dataplane events. Very verbose.
    Trace,
}

/// The kernel's hot-path counters, as dense array slots.
///
/// Frame and stream transmission count on every single event, so the
/// kernel must not pay a string hash or a `BTreeMap` walk per
/// increment. Each variant owns one slot in a fixed array inside
/// [`Tracer`]; the string-keyed readout API ([`Tracer::counter`],
/// [`Tracer::counters`]) resolves these names transparently, so
/// harvesting code cannot tell the slots from ordinary named counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum KernelCounter {
    /// `link.tx_frames` — frames handed to a link transmitter.
    TxFrames,
    /// `link.tx_bytes` — payload bytes of those frames.
    TxBytes,
    /// `link.tx_no_link` — sends on an unwired port.
    TxNoLink,
    /// `link.tx_down` — sends on an administratively-down link.
    TxDown,
    /// `link.dropped` — frames lost to the link's fault model.
    Dropped,
    /// `link.duplicated` — frames duplicated by the fault model.
    Duplicated,
    /// `conn.opened` — stream handshakes completed.
    ConnOpened,
    /// `conn.refused` — connects to a non-listening peer.
    ConnRefused,
    /// `conn.tx_closed` — sends on an already-closed stream.
    ConnTxClosed,
    /// `conn.tx_bytes` — stream payload bytes sent.
    ConnTxBytes,
}

impl KernelCounter {
    /// Number of slots (the array length inside [`Tracer`]).
    pub const COUNT: usize = 10;

    /// Every variant, in slot order.
    pub const ALL: [KernelCounter; KernelCounter::COUNT] = [
        KernelCounter::TxFrames,
        KernelCounter::TxBytes,
        KernelCounter::TxNoLink,
        KernelCounter::TxDown,
        KernelCounter::Dropped,
        KernelCounter::Duplicated,
        KernelCounter::ConnOpened,
        KernelCounter::ConnRefused,
        KernelCounter::ConnTxClosed,
        KernelCounter::ConnTxBytes,
    ];

    /// The public counter name this slot answers to.
    pub const fn name(self) -> &'static str {
        match self {
            KernelCounter::TxFrames => "link.tx_frames",
            KernelCounter::TxBytes => "link.tx_bytes",
            KernelCounter::TxNoLink => "link.tx_no_link",
            KernelCounter::TxDown => "link.tx_down",
            KernelCounter::Dropped => "link.dropped",
            KernelCounter::Duplicated => "link.duplicated",
            KernelCounter::ConnOpened => "conn.opened",
            KernelCounter::ConnRefused => "conn.refused",
            KernelCounter::ConnTxClosed => "conn.tx_closed",
            KernelCounter::ConnTxBytes => "conn.tx_bytes",
        }
    }

    /// Reverse lookup for the string readout API (cold path only).
    pub fn from_name(name: &str) -> Option<KernelCounter> {
        KernelCounter::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// A single trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub at: Time,
    pub level: TraceLevel,
    /// Name of the agent that emitted the event (or "sim" for the kernel).
    pub source: String,
    /// Event category, e.g. `"of.packet_in"`, `"rpc.call"`, `"vm.created"`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {:<18} {:<22} {}",
            self.at.to_string(),
            self.source,
            self.kind,
            self.detail
        )
    }
}

/// Event sink plus named monotonic counters.
///
/// Counting is gated on the trace level: at [`TraceLevel::Off`] (the
/// release-sweep setting) both the kernel slots and the named map are
/// frozen, so the hot path pays one branch and nothing else. At every
/// counting level the values are exact and identical — verbosity only
/// changes which *events* are stored, never what the counters say.
#[derive(Clone, Default)]
pub struct Tracer {
    level: TraceLevel,
    events: Vec<TraceEvent>,
    counters: BTreeMap<String, u64>,
    /// Dense slots for [`KernelCounter`] (no hashing on the hot path).
    kernel: [u64; KernelCounter::COUNT],
    /// Cap on stored events; older events are dropped beyond this.
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    pub fn new(level: TraceLevel) -> Self {
        Tracer {
            level,
            events: Vec::new(),
            counters: BTreeMap::new(),
            kernel: [0; KernelCounter::COUNT],
            capacity: 1_000_000,
            dropped: 0,
        }
    }

    pub fn level(&self) -> TraceLevel {
        self.level
    }

    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// Limit stored events (counters are unaffected).
    pub fn set_capacity(&mut self, cap: usize) {
        self.capacity = cap;
    }

    /// Record an event if `level` passes the filter.
    pub fn emit(&mut self, at: Time, level: TraceLevel, source: &str, kind: &str, detail: String) {
        if level == TraceLevel::Off || level > self.level {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            at,
            level,
            source: source.to_string(),
            kind: kind.to_string(),
            detail,
        });
    }

    /// Increment a named counter. Gated on the level: `Off` counts
    /// nothing (the release-sweep fast path); every other level counts
    /// exactly.
    pub fn count(&mut self, name: &str, delta: u64) {
        if self.level == TraceLevel::Off {
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increment a kernel counter slot — a bounds-check-free array add,
    /// no hashing, no allocation. Same `Off` gate as [`Tracer::count`].
    #[inline]
    pub fn count_kernel(&mut self, slot: KernelCounter, delta: u64) {
        if self.level == TraceLevel::Off {
            return;
        }
        self.kernel[slot as usize] += delta;
    }

    /// Read a kernel counter slot directly.
    pub fn kernel_counter(&self, slot: KernelCounter) -> u64 {
        self.kernel[slot as usize]
    }

    /// Read a counter by name; kernel slot names resolve to their
    /// array slots, everything else to the named map.
    pub fn counter(&self, name: &str) -> u64 {
        if let Some(slot) = KernelCounter::from_name(name) {
            return self.kernel[slot as usize];
        }
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Every counter (named and kernel slots) as one name → value map.
    /// Kernel slots appear only once non-zero, mirroring how named
    /// counters only exist after their first increment.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        let mut all = self.counters.clone();
        for slot in KernelCounter::ALL {
            let v = self.kernel[slot as usize];
            if v != 0 {
                all.insert(slot.name().to_string(), v);
            }
        }
        all
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose `kind` starts with `prefix`.
    pub fn events_with_kind<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.kind.starts_with(prefix))
    }

    /// Time of the first event matching `prefix`, if any.
    pub fn first_time_of(&self, prefix: &str) -> Option<Time> {
        self.events_with_kind(prefix).next().map(|e| e.at)
    }

    /// Time of the last event matching `prefix`, if any.
    pub fn last_time_of(&self, prefix: &str) -> Option<Time> {
        self.events_with_kind(prefix).last().map(|e| e.at)
    }

    /// Number of events silently dropped after hitting capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tr: &mut Tracer, s: u64, kind: &str) {
        tr.emit(
            Time::from_secs(s),
            TraceLevel::Info,
            "t",
            kind,
            String::new(),
        );
    }

    #[test]
    fn level_filtering() {
        let mut tr = Tracer::new(TraceLevel::Info);
        tr.emit(Time::ZERO, TraceLevel::Debug, "a", "x", "hidden".into());
        tr.emit(Time::ZERO, TraceLevel::Info, "a", "y", "shown".into());
        assert_eq!(tr.events().len(), 1);
        assert_eq!(tr.events()[0].kind, "y");
    }

    #[test]
    fn off_records_nothing() {
        let mut tr = Tracer::new(TraceLevel::Off);
        tr.emit(Time::ZERO, TraceLevel::Info, "a", "x", String::new());
        assert!(tr.events().is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let mut tr = Tracer::new(TraceLevel::Info);
        tr.count("of.flow_mod", 1);
        tr.count("of.flow_mod", 2);
        assert_eq!(tr.counter("of.flow_mod"), 3);
        assert_eq!(tr.counter("missing"), 0);
    }

    #[test]
    fn off_gates_all_counting() {
        let mut tr = Tracer::new(TraceLevel::Off);
        tr.count("of.flow_mod", 5);
        tr.count_kernel(KernelCounter::TxFrames, 5);
        assert_eq!(tr.counter("of.flow_mod"), 0);
        assert_eq!(tr.counter("link.tx_frames"), 0);
        assert!(tr.counters().is_empty());
    }

    #[test]
    fn kernel_slots_answer_to_their_names() {
        let mut tr = Tracer::new(TraceLevel::Info);
        tr.count_kernel(KernelCounter::TxFrames, 2);
        tr.count_kernel(KernelCounter::TxBytes, 300);
        tr.count("rf.flow_add", 1);
        assert_eq!(tr.counter("link.tx_frames"), 2);
        assert_eq!(tr.kernel_counter(KernelCounter::TxBytes), 300);
        let all = tr.counters();
        assert_eq!(all.get("link.tx_frames"), Some(&2));
        assert_eq!(all.get("link.tx_bytes"), Some(&300));
        assert_eq!(all.get("rf.flow_add"), Some(&1));
        // Zero slots stay invisible, like never-incremented named ones.
        assert!(!all.contains_key("link.dropped"));
    }

    #[test]
    fn kernel_counter_names_round_trip() {
        for slot in KernelCounter::ALL {
            assert_eq!(KernelCounter::from_name(slot.name()), Some(slot));
        }
        assert_eq!(KernelCounter::from_name("link.unknown"), None);
    }

    #[test]
    fn kind_prefix_query() {
        let mut tr = Tracer::new(TraceLevel::Info);
        ev(&mut tr, 1, "vm.created");
        ev(&mut tr, 2, "vm.configured");
        ev(&mut tr, 3, "of.packet_in");
        assert_eq!(tr.events_with_kind("vm.").count(), 2);
        assert_eq!(tr.first_time_of("vm."), Some(Time::from_secs(1)));
        assert_eq!(tr.last_time_of("vm."), Some(Time::from_secs(2)));
        assert_eq!(tr.first_time_of("bgp."), None);
    }

    #[test]
    fn capacity_drops_excess() {
        let mut tr = Tracer::new(TraceLevel::Info);
        tr.set_capacity(2);
        ev(&mut tr, 1, "a");
        ev(&mut tr, 2, "b");
        ev(&mut tr, 3, "c");
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.dropped(), 1);
    }

    #[test]
    fn display_renders() {
        let e = TraceEvent {
            at: Time::from_millis(1500),
            level: TraceLevel::Info,
            source: "sw1".into(),
            kind: "of.hello".into(),
            detail: "v1".into(),
        };
        let s = e.to_string();
        assert!(s.contains("1.500s"));
        assert!(s.contains("of.hello"));
    }
}
