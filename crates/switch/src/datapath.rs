//! Frame rewriting and output resolution — the action interpreter.
//!
//! OF 1.0 actions mutate header fields; hardware (and OVS) fix up the
//! IPv4 and L4 checksums as a side effect, so we do the same by
//! re-emitting the affected layers through `rf-wire`.

use bytes::Bytes;
use rf_openflow::{
    Action, PortNumber, OFPP_ALL, OFPP_CONTROLLER, OFPP_FLOOD, OFPP_IN_PORT, OFPP_MAX, OFPP_TABLE,
};
use rf_wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, UdpPacket};
use std::net::Ipv4Addr;

/// Where a processed frame must go.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Egress {
    /// Transmit on a physical port.
    Port(PortNumber, Bytes),
    /// Punt to the controller (output action to `OFPP_CONTROLLER`).
    Controller { max_len: u16, frame: Bytes },
    /// Re-run the flow table (PACKET_OUT to `OFPP_TABLE`).
    Table(Bytes),
}

/// Working copy of a frame that applies header rewrites lazily.
#[derive(Clone)]
struct FrameEditor {
    eth: EthernetFrame,
    ip: Option<Ipv4Packet>,
    udp: Option<UdpPacket>,
    dirty: bool,
}

impl FrameEditor {
    fn new(frame: &Bytes) -> Option<FrameEditor> {
        let eth = EthernetFrame::parse_bytes(frame).ok()?;
        let (ip, udp) = if eth.ethertype == EtherType::IPV4 {
            match Ipv4Packet::parse_bytes(&eth.payload) {
                Ok(ip) => {
                    let udp = if ip.protocol == IpProtocol::UDP {
                        UdpPacket::parse_bytes(&ip.payload, ip.src, ip.dst).ok()
                    } else {
                        None
                    };
                    (Some(ip), udp)
                }
                Err(_) => (None, None),
            }
        } else {
            (None, None)
        };
        Some(FrameEditor {
            eth,
            ip,
            udp,
            dirty: false,
        })
    }

    fn set_nw_src(&mut self, a: Ipv4Addr) {
        if let Some(ip) = &mut self.ip {
            ip.src = a;
            self.dirty = true;
        }
    }

    fn set_nw_dst(&mut self, a: Ipv4Addr) {
        if let Some(ip) = &mut self.ip {
            ip.dst = a;
            self.dirty = true;
        }
    }

    fn set_nw_tos(&mut self, tos: u8) {
        if let Some(ip) = &mut self.ip {
            ip.dscp = tos >> 2;
            self.dirty = true;
        }
    }

    fn set_tp_src(&mut self, p: u16) {
        if let Some(udp) = &mut self.udp {
            udp.src_port = p;
            self.dirty = true;
        }
    }

    fn set_tp_dst(&mut self, p: u16) {
        if let Some(udp) = &mut self.udp {
            udp.dst_port = p;
            self.dirty = true;
        }
    }

    fn render(&self, original: &Bytes) -> Bytes {
        if !self.dirty {
            // Only MAC rewrites (or nothing): patch in place, cheap path.
            let mut eth = self.eth.clone();
            return eth_rebuild(&mut eth, None);
        }
        let mut eth = self.eth.clone();
        let inner = match (&self.ip, &self.udp) {
            (Some(ip), Some(udp)) => {
                let mut ip = ip.clone();
                ip.payload = udp.emit(ip.src, ip.dst);
                Some(ip.emit())
            }
            (Some(ip), None) => Some(ip.emit()),
            _ => None,
        };
        match inner {
            Some(bytes) => eth_rebuild(&mut eth, Some(bytes)),
            None => original.clone(),
        }
    }
}

fn eth_rebuild(eth: &mut EthernetFrame, new_payload: Option<Bytes>) -> Bytes {
    if let Some(p) = new_payload {
        eth.payload = p;
    }
    eth.emit()
}

/// Apply an OF 1.0 action list to `frame` received on `in_port`.
///
/// `num_ports` bounds flood/all expansion (ports are `1..=num_ports`).
/// Returns the list of egress operations in action order. Unknown or
/// unsupported output ports are silently dropped (matching OVS).
pub fn apply_actions(
    frame: &Bytes,
    actions: &[Action],
    in_port: PortNumber,
    num_ports: u16,
) -> Vec<Egress> {
    // Fast path: an action list without header rewrites (the
    // overwhelmingly common case — plain forwarding, floods, punts)
    // leaves the frame byte-identical, so the parse → re-emit round
    // trip below is pure overhead. `emit` pads to the 60-byte minimum,
    // so only already-padded frames are guaranteed to round-trip to
    // themselves; shorter ones (never produced by `emit`, but possible
    // via hand-built PACKET_OUT data) take the slow path, which pads
    // exactly as before.
    let mutates = actions.iter().any(|a| {
        matches!(
            a,
            Action::SetDlSrc(_)
                | Action::SetDlDst(_)
                | Action::SetNwSrc(_)
                | Action::SetNwDst(_)
                | Action::SetNwTos(_)
                | Action::SetTpSrc(_)
                | Action::SetTpDst(_)
        )
    });
    if !mutates && frame.len() >= rf_wire::MIN_FRAME_NO_FCS {
        let mut out = Vec::new();
        for action in actions {
            match action {
                Action::Output { port, max_len } => match *port {
                    OFPP_CONTROLLER => out.push(Egress::Controller {
                        max_len: *max_len,
                        frame: frame.clone(),
                    }),
                    OFPP_IN_PORT => out.push(Egress::Port(in_port, frame.clone())),
                    OFPP_TABLE => out.push(Egress::Table(frame.clone())),
                    OFPP_FLOOD | OFPP_ALL => {
                        for p in 1..=num_ports {
                            if p != in_port {
                                out.push(Egress::Port(p, frame.clone()));
                            }
                        }
                    }
                    p if (1..=OFPP_MAX).contains(&p) && p <= num_ports => {
                        out.push(Egress::Port(p, frame.clone()));
                    }
                    _ => { /* OFPP_NORMAL / LOCAL / NONE / invalid: drop */ }
                },
                Action::Enqueue { port, .. } if *port >= 1 && *port <= num_ports => {
                    out.push(Egress::Port(*port, frame.clone()));
                }
                _ => { /* dropped Enqueue / VLAN actions: accepted and ignored */ }
            }
        }
        return out;
    }
    let mut editor = FrameEditor::new(frame);
    let mut out = Vec::new();
    let render = |e: &Option<FrameEditor>| -> Bytes {
        match e {
            Some(ed) => ed.render(frame),
            None => frame.clone(),
        }
    };
    for action in actions {
        match action {
            Action::Output { port, max_len } => {
                let bytes = render(&editor);
                match *port {
                    OFPP_CONTROLLER => out.push(Egress::Controller {
                        max_len: *max_len,
                        frame: bytes,
                    }),
                    OFPP_IN_PORT => out.push(Egress::Port(in_port, bytes)),
                    OFPP_TABLE => out.push(Egress::Table(bytes)),
                    OFPP_FLOOD | OFPP_ALL => {
                        for p in 1..=num_ports {
                            if p != in_port {
                                out.push(Egress::Port(p, bytes.clone()));
                            }
                        }
                    }
                    p if (1..=OFPP_MAX).contains(&p) && p <= num_ports => {
                        out.push(Egress::Port(p, bytes));
                    }
                    _ => { /* OFPP_NORMAL / LOCAL / NONE / invalid: drop */ }
                }
            }
            Action::Enqueue { port, .. } => {
                // Queues are not modelled: treated as plain output.
                let bytes = render(&editor);
                if *port >= 1 && *port <= num_ports {
                    out.push(Egress::Port(*port, bytes));
                }
            }
            Action::SetDlSrc(mac) => {
                if let Some(e) = &mut editor {
                    e.eth.src = *mac;
                }
            }
            Action::SetDlDst(mac) => {
                if let Some(e) = &mut editor {
                    e.eth.dst = *mac;
                }
            }
            Action::SetNwSrc(a) => {
                if let Some(e) = &mut editor {
                    e.set_nw_src(*a);
                }
            }
            Action::SetNwDst(a) => {
                if let Some(e) = &mut editor {
                    e.set_nw_dst(*a);
                }
            }
            Action::SetNwTos(t) => {
                if let Some(e) = &mut editor {
                    e.set_nw_tos(*t);
                }
            }
            Action::SetTpSrc(p) => {
                if let Some(e) = &mut editor {
                    e.set_tp_src(*p);
                }
            }
            Action::SetTpDst(p) => {
                if let Some(e) = &mut editor {
                    e.set_tp_dst(*p);
                }
            }
            // VLAN actions: tagging is out of scope (DESIGN.md); the
            // actions are accepted and ignored, as OVS does when the
            // packet has no VLAN context to modify.
            Action::SetVlanVid(_) | Action::SetVlanPcp(_) | Action::StripVlan => {}
        }
    }
    out
}

/// Dedicated MAC pair used by tests and RouteFlow translation.
pub fn rewrite_macs(frame: &Bytes, src: MacAddr, dst: MacAddr) -> Option<Bytes> {
    let mut eth = EthernetFrame::parse_bytes(frame).ok()?;
    eth.src = src;
    eth.dst = dst;
    Some(eth.emit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_wire::IcmpPacket;

    fn udp_frame() -> Bytes {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 9, 9);
        let udp = UdpPacket::new(5004, 9000, Bytes::from_static(b"payload"));
        let ip = Ipv4Packet::new(src, dst, IpProtocol::UDP, udp.emit(src, dst));
        EthernetFrame::new(
            MacAddr([2, 0, 0, 0, 0, 2]),
            MacAddr([2, 0, 0, 0, 0, 1]),
            EtherType::IPV4,
            ip.emit(),
        )
        .emit()
    }

    #[test]
    fn plain_output() {
        let f = udp_frame();
        let out = apply_actions(&f, &[Action::output(3)], 1, 4);
        assert_eq!(out.len(), 1);
        match &out[0] {
            Egress::Port(3, bytes) => assert_eq!(bytes, &f),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flood_skips_in_port() {
        let f = udp_frame();
        let out = apply_actions(&f, &[Action::output(OFPP_FLOOD)], 2, 4);
        let ports: Vec<u16> = out
            .iter()
            .map(|e| match e {
                Egress::Port(p, _) => *p,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(ports, vec![1, 3, 4]);
    }

    #[test]
    fn mac_rewrite_applies_before_output() {
        let f = udp_frame();
        let new_src = MacAddr([0xAA; 6]);
        let new_dst = MacAddr([0xBB; 6]);
        let out = apply_actions(
            &f,
            &[
                Action::SetDlSrc(new_src),
                Action::SetDlDst(new_dst),
                Action::output(1),
            ],
            2,
            4,
        );
        match &out[0] {
            Egress::Port(1, bytes) => {
                let eth = EthernetFrame::parse(bytes).unwrap();
                assert_eq!(eth.src, new_src);
                assert_eq!(eth.dst, new_dst);
                // Inner packet untouched and still checksum-valid.
                let ip = Ipv4Packet::parse(&eth.payload).unwrap();
                UdpPacket::parse(&ip.payload, ip.src, ip.dst).unwrap();
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nw_rewrite_fixes_checksums() {
        let f = udp_frame();
        let out = apply_actions(
            &f,
            &[
                Action::SetNwDst(Ipv4Addr::new(172, 16, 0, 1)),
                Action::SetTpDst(1234),
                Action::output(1),
            ],
            2,
            4,
        );
        match &out[0] {
            Egress::Port(1, bytes) => {
                let eth = EthernetFrame::parse(bytes).unwrap();
                let ip = Ipv4Packet::parse(&eth.payload).unwrap();
                assert_eq!(ip.dst, Ipv4Addr::new(172, 16, 0, 1));
                let udp = UdpPacket::parse(&ip.payload, ip.src, ip.dst).unwrap();
                assert_eq!(udp.dst_port, 1234);
                assert_eq!(&udp.payload[..], b"payload");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn output_to_controller_keeps_frame() {
        let f = udp_frame();
        let out = apply_actions(
            &f,
            &[Action::Output {
                port: OFPP_CONTROLLER,
                max_len: 128,
            }],
            1,
            4,
        );
        assert_eq!(
            out,
            vec![Egress::Controller {
                max_len: 128,
                frame: f
            }]
        );
    }

    #[test]
    fn sequencing_rewrites_between_outputs() {
        // Output, then rewrite, then output again: first copy original,
        // second rewritten (OF 1.0 sequential semantics).
        let f = udp_frame();
        let out = apply_actions(
            &f,
            &[
                Action::output(1),
                Action::SetDlSrc(MacAddr([0xCC; 6])),
                Action::output(1),
            ],
            2,
            4,
        );
        let srcs: Vec<MacAddr> = out
            .iter()
            .map(|e| match e {
                Egress::Port(_, b) => EthernetFrame::parse(b).unwrap().src,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(srcs[0], MacAddr([2, 0, 0, 0, 0, 1]));
        assert_eq!(srcs[1], MacAddr([0xCC; 6]));
    }

    #[test]
    fn invalid_port_dropped() {
        let f = udp_frame();
        let out = apply_actions(&f, &[Action::output(99)], 1, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn icmp_frame_mac_rewrite_survives() {
        let src = Ipv4Addr::new(1, 1, 1, 1);
        let dst = Ipv4Addr::new(2, 2, 2, 2);
        let icmp = IcmpPacket::echo_request(7, 1, Bytes::from_static(b"x"));
        let ip = Ipv4Packet::new(src, dst, IpProtocol::ICMP, icmp.emit());
        let f = EthernetFrame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::IPV4, ip.emit()).emit();
        let out = apply_actions(
            &f,
            &[Action::SetDlDst(MacAddr([9; 6])), Action::output(1)],
            2,
            2,
        );
        match &out[0] {
            Egress::Port(1, bytes) => {
                let eth = EthernetFrame::parse(bytes).unwrap();
                assert_eq!(eth.dst, MacAddr([9; 6]));
                let ip = Ipv4Packet::parse(&eth.payload).unwrap();
                assert!(IcmpPacket::parse(&ip.payload).is_ok());
            }
            other => panic!("{other:?}"),
        }
    }
}
