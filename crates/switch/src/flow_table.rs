//! The OF 1.0 flow table: priority-ordered wildcard matching with
//! idle/hard timeouts and per-entry counters.

use rf_openflow::{Action, FlowStatsEntry};
use rf_openflow::{FlowModCommand, FlowRemovedReason, OfMatch, PacketKey, Wildcards};
use rf_sim::Time;
use std::collections::HashMap;

/// One installed flow entry.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowEntry {
    pub of_match: OfMatch,
    pub priority: u16,
    pub cookie: u64,
    /// Seconds of inactivity before expiry (0 = never).
    pub idle_timeout: u16,
    /// Seconds after installation before expiry (0 = never).
    pub hard_timeout: u16,
    /// `OFPFF_*` flags (`SEND_FLOW_REM` is honoured).
    pub flags: u16,
    pub actions: Vec<Action>,
    pub packet_count: u64,
    pub byte_count: u64,
    pub installed_at: Time,
    pub last_matched: Time,
}

impl FlowEntry {
    /// True if this entry is exact (no wildcards): such entries always
    /// take precedence over wildcarded ones in OF 1.0.
    pub fn is_exact(&self) -> bool {
        self.of_match.wildcards.0 & Wildcards::ALL == 0
    }

    /// Effective priority: exact-match entries outrank all wildcard
    /// entries regardless of their `priority` field.
    fn effective_priority(&self) -> u32 {
        if self.is_exact() {
            u32::from(u16::MAX) + 1
        } else {
            u32::from(self.priority)
        }
    }

    /// Does this entry reference `out_port` in any output action?
    /// (`OFPP_NONE` means "don't filter".)
    fn references_port(&self, out_port: u16) -> bool {
        if out_port == rf_openflow::OFPP_NONE {
            return true;
        }
        self.actions
            .iter()
            .any(|a| matches!(a, Action::Output { port, .. } if *port == out_port))
    }

    /// Convert to a stats-reply entry.
    pub fn to_stats(&self, now: Time) -> FlowStatsEntry {
        let dur = now.since(self.installed_at);
        FlowStatsEntry {
            table_id: 0,
            of_match: self.of_match,
            duration_sec: dur.as_secs() as u32,
            duration_nsec: dur.subsec_nanos(),
            priority: self.priority,
            idle_timeout: self.idle_timeout,
            hard_timeout: self.hard_timeout,
            cookie: self.cookie,
            packet_count: self.packet_count,
            byte_count: self.byte_count,
            actions: self.actions.clone(),
        }
    }
}

/// An entry evicted by [`FlowTable::expire`] or an overlapping delete.
#[derive(Clone, Debug)]
pub struct Removed {
    pub entry: FlowEntry,
    pub reason: FlowRemovedReason,
}

/// The single flow table of an OF 1.0 switch (`n_tables = 1`, matching
/// Open vSwitch 1.4's userspace datapath as the paper used it).
///
/// Lookups are indexed: exact entries (RouteFlow installs one per
/// learned host pair) live in a hash map keyed by the [`PacketKey`]
/// they match, and wildcard entries in a list pre-sorted by effective
/// priority. The index is rebuilt lazily after table mutations, so a
/// burst of FLOW_MODs costs one rebuild, and a corpus-scale table of
/// 10k exact routes answers a lookup in O(1) instead of O(n).
#[derive(Clone, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    /// Exact entries by the one key they match → index in `entries`.
    /// Built in index order with overwrite, so among duplicate exact
    /// matches the *highest* index wins — exactly the entry the
    /// historical linear `max_by_key` scan returned.
    exact: HashMap<PacketKey, usize>,
    /// Wildcard entries sorted by (priority desc, index desc): the
    /// first match in this order is the linear scan's winner.
    wild: Vec<usize>,
    dirty: bool,
    pub lookup_count: u64,
    pub matched_count: u64,
}

impl FlowTable {
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// The single packet an exact match covers. Exactness means every
    /// field [`OfMatch::matches`] consults is pinned, so this is a
    /// plain field copy.
    fn exact_key(m: &OfMatch) -> PacketKey {
        PacketKey {
            in_port: m.in_port,
            dl_src: m.dl_src,
            dl_dst: m.dl_dst,
            dl_type: m.dl_type,
            nw_tos: m.nw_tos,
            nw_proto: m.nw_proto,
            nw_src: m.nw_src,
            nw_dst: m.nw_dst,
            tp_src: m.tp_src,
            tp_dst: m.tp_dst,
        }
    }

    fn rebuild_index(&mut self) {
        let Self {
            entries,
            exact,
            wild,
            dirty,
            ..
        } = self;
        exact.clear();
        wild.clear();
        for (i, e) in entries.iter().enumerate() {
            if e.is_exact() {
                exact.insert(Self::exact_key(&e.of_match), i);
            } else {
                wild.push(i);
            }
        }
        wild.sort_unstable_by(|&a, &b| {
            (entries[b].effective_priority(), b).cmp(&(entries[a].effective_priority(), a))
        });
        *dirty = false;
    }

    /// Find the highest-priority entry matching `key` and update its
    /// counters.
    pub fn lookup(&mut self, key: &PacketKey, len: usize, now: Time) -> Option<&FlowEntry> {
        self.lookup_count += 1;
        if self.dirty {
            self.rebuild_index();
        }
        // Exact entries outrank every wildcard entry (OF 1.0), so a
        // hash hit short-circuits the priority-ordered wildcard scan.
        let best = match self.exact.get(key) {
            Some(&i) => i,
            None => self
                .wild
                .iter()
                .copied()
                .find(|&i| self.entries[i].of_match.matches(key))?,
        };
        let e = &mut self.entries[best];
        e.packet_count += 1;
        e.byte_count += len as u64;
        e.last_matched = now;
        self.matched_count += 1;
        Some(&self.entries[best])
    }

    /// Apply a FLOW_MOD. Returns entries removed as a side effect
    /// (DELETE commands), which may need FLOW_REMOVED notifications.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_flow_mod(
        &mut self,
        command: FlowModCommand,
        of_match: OfMatch,
        priority: u16,
        cookie: u64,
        idle_timeout: u16,
        hard_timeout: u16,
        flags: u16,
        out_port: u16,
        actions: Vec<Action>,
        now: Time,
    ) -> Vec<Removed> {
        match command {
            FlowModCommand::Add => {
                // Identical match+priority replaces (counters reset),
                // per OF 1.0 §4.6.
                self.entries
                    .retain(|e| !(e.of_match == of_match && e.priority == priority));
                self.entries.push(FlowEntry {
                    of_match,
                    priority,
                    cookie,
                    idle_timeout,
                    hard_timeout,
                    flags,
                    actions,
                    packet_count: 0,
                    byte_count: 0,
                    installed_at: now,
                    last_matched: now,
                });
                self.dirty = true;
                Vec::new()
            }
            FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                // Only actions and cookie change: entry positions,
                // exactness and priorities — everything the lookup
                // index depends on — stay put, so no rebuild needed.
                let strict = command == FlowModCommand::ModifyStrict;
                let mut touched = false;
                for e in &mut self.entries {
                    let hit = if strict {
                        e.of_match == of_match && e.priority == priority
                    } else {
                        e.of_match.is_subset_of(&of_match)
                    };
                    if hit {
                        e.actions = actions.clone();
                        e.cookie = cookie;
                        touched = true;
                    }
                }
                if !touched {
                    // Per spec, MODIFY with no match behaves like ADD.
                    return self.apply_flow_mod(
                        FlowModCommand::Add,
                        of_match,
                        priority,
                        cookie,
                        idle_timeout,
                        hard_timeout,
                        flags,
                        out_port,
                        actions,
                        now,
                    );
                }
                Vec::new()
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let strict = command == FlowModCommand::DeleteStrict;
                let mut removed = Vec::new();
                self.entries.retain(|e| {
                    let hit = if strict {
                        e.of_match == of_match && e.priority == priority
                    } else {
                        e.of_match.is_subset_of(&of_match)
                    } && e.references_port(out_port);
                    if hit {
                        removed.push(Removed {
                            entry: e.clone(),
                            reason: FlowRemovedReason::Delete,
                        });
                    }
                    !hit
                });
                if !removed.is_empty() {
                    self.dirty = true;
                }
                removed
            }
        }
    }

    /// Remove entries whose idle or hard timeout has elapsed.
    pub fn expire(&mut self, now: Time) -> Vec<Removed> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if e.hard_timeout > 0
                && now.since(e.installed_at).as_secs() >= u64::from(e.hard_timeout)
            {
                removed.push(Removed {
                    entry: e.clone(),
                    reason: FlowRemovedReason::HardTimeout,
                });
                return false;
            }
            if e.idle_timeout > 0
                && now.since(e.last_matched).as_secs() >= u64::from(e.idle_timeout)
            {
                removed.push(Removed {
                    entry: e.clone(),
                    reason: FlowRemovedReason::IdleTimeout,
                });
                return false;
            }
            true
        });
        if !removed.is_empty() {
            self.dirty = true;
        }
        removed
    }

    /// Entries matching a stats request (loose subset + out_port filter).
    pub fn stats_matching(&self, of_match: &OfMatch, out_port: u16) -> Vec<&FlowEntry> {
        self.entries
            .iter()
            .filter(|e| e.of_match.is_subset_of(of_match) && e.references_port(out_port))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_openflow::OFPP_NONE;
    use rf_wire::MacAddr;
    use std::net::Ipv4Addr;

    fn key(dst: Ipv4Addr) -> PacketKey {
        PacketKey {
            in_port: 1,
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_type: 0x0800,
            nw_tos: 0,
            nw_proto: 17,
            nw_src: Ipv4Addr::new(1, 1, 1, 1),
            nw_dst: dst,
            tp_src: 10,
            tp_dst: 20,
        }
    }

    fn add(t: &mut FlowTable, m: OfMatch, prio: u16, port: u16) {
        t.apply_flow_mod(
            FlowModCommand::Add,
            m,
            prio,
            0,
            0,
            0,
            0,
            OFPP_NONE,
            vec![Action::output(port)],
            Time::ZERO,
        );
    }

    #[test]
    fn highest_priority_wins() {
        let mut t = FlowTable::new();
        add(
            &mut t,
            OfMatch::ipv4_dst_prefix("10.0.0.0".parse().unwrap(), 8),
            10,
            1,
        );
        add(
            &mut t,
            OfMatch::ipv4_dst_prefix("10.2.0.0".parse().unwrap(), 16),
            20,
            2,
        );
        let e = t
            .lookup(&key("10.2.3.4".parse().unwrap()), 100, Time::ZERO)
            .unwrap();
        assert_eq!(e.actions, vec![Action::output(2)]);
        // Outside the /16, the /8 still matches.
        let e = t
            .lookup(&key("10.9.0.1".parse().unwrap()), 100, Time::ZERO)
            .unwrap();
        assert_eq!(e.actions, vec![Action::output(1)]);
    }

    #[test]
    fn counters_update_on_match() {
        let mut t = FlowTable::new();
        add(&mut t, OfMatch::any(), 1, 1);
        t.lookup(&key("1.2.3.4".parse().unwrap()), 64, Time::from_secs(1));
        t.lookup(&key("1.2.3.4".parse().unwrap()), 36, Time::from_secs(2));
        let e = &t.entries()[0];
        assert_eq!(e.packet_count, 2);
        assert_eq!(e.byte_count, 100);
        assert_eq!(e.last_matched, Time::from_secs(2));
        assert_eq!(t.lookup_count, 2);
        assert_eq!(t.matched_count, 2);
    }

    #[test]
    fn miss_returns_none_but_counts_lookup() {
        let mut t = FlowTable::new();
        add(&mut t, OfMatch::lldp(), 1, 1);
        assert!(t
            .lookup(&key("9.9.9.9".parse().unwrap()), 1, Time::ZERO)
            .is_none());
        assert_eq!(t.lookup_count, 1);
        assert_eq!(t.matched_count, 0);
    }

    #[test]
    fn add_identical_replaces_and_resets_counters() {
        let mut t = FlowTable::new();
        add(&mut t, OfMatch::any(), 5, 1);
        t.lookup(&key("1.1.1.1".parse().unwrap()), 10, Time::ZERO);
        add(&mut t, OfMatch::any(), 5, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].packet_count, 0);
        assert_eq!(t.entries()[0].actions, vec![Action::output(2)]);
    }

    #[test]
    fn delete_loose_removes_subsets() {
        let mut t = FlowTable::new();
        add(
            &mut t,
            OfMatch::ipv4_dst_prefix("10.1.0.0".parse().unwrap(), 16),
            1,
            1,
        );
        add(
            &mut t,
            OfMatch::ipv4_dst_prefix("10.2.0.0".parse().unwrap(), 16),
            1,
            2,
        );
        add(&mut t, OfMatch::lldp(), 1, 3);
        let removed = t.apply_flow_mod(
            FlowModCommand::Delete,
            OfMatch::ipv4_dst_prefix("10.0.0.0".parse().unwrap(), 8),
            0,
            0,
            0,
            0,
            0,
            OFPP_NONE,
            vec![],
            Time::ZERO,
        );
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_strict_requires_exact_match_and_priority() {
        let mut t = FlowTable::new();
        let m = OfMatch::ipv4_dst_prefix("10.1.0.0".parse().unwrap(), 16);
        add(&mut t, m, 7, 1);
        // Wrong priority: no-op.
        let removed = t.apply_flow_mod(
            FlowModCommand::DeleteStrict,
            m,
            8,
            0,
            0,
            0,
            0,
            OFPP_NONE,
            vec![],
            Time::ZERO,
        );
        assert!(removed.is_empty());
        assert_eq!(t.len(), 1);
        let removed = t.apply_flow_mod(
            FlowModCommand::DeleteStrict,
            m,
            7,
            0,
            0,
            0,
            0,
            OFPP_NONE,
            vec![],
            Time::ZERO,
        );
        assert_eq!(removed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn delete_filters_by_out_port() {
        let mut t = FlowTable::new();
        add(
            &mut t,
            OfMatch::ipv4_dst_prefix("10.1.0.0".parse().unwrap(), 16),
            1,
            1,
        );
        add(
            &mut t,
            OfMatch::ipv4_dst_prefix("10.2.0.0".parse().unwrap(), 16),
            1,
            2,
        );
        let removed = t.apply_flow_mod(
            FlowModCommand::Delete,
            OfMatch::any(),
            0,
            0,
            0,
            0,
            0,
            2, // only entries outputting to port 2
            vec![],
            Time::ZERO,
        );
        assert_eq!(removed.len(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].actions, vec![Action::output(1)]);
    }

    #[test]
    fn modify_updates_actions_or_adds() {
        let mut t = FlowTable::new();
        let m = OfMatch::ipv4_dst_prefix("10.1.0.0".parse().unwrap(), 16);
        add(&mut t, m, 1, 1);
        t.apply_flow_mod(
            FlowModCommand::Modify,
            OfMatch::ipv4_dst_prefix("10.0.0.0".parse().unwrap(), 8),
            0,
            9,
            0,
            0,
            0,
            OFPP_NONE,
            vec![Action::output(5)],
            Time::ZERO,
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].actions, vec![Action::output(5)]);
        assert_eq!(t.entries()[0].cookie, 9);
        // No match → behaves as ADD.
        t.apply_flow_mod(
            FlowModCommand::Modify,
            OfMatch::arp(),
            3,
            0,
            0,
            0,
            0,
            OFPP_NONE,
            vec![Action::output(6)],
            Time::ZERO,
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new();
        t.apply_flow_mod(
            FlowModCommand::Add,
            OfMatch::any(),
            1,
            0,
            0,
            5,
            0,
            OFPP_NONE,
            vec![],
            Time::ZERO,
        );
        assert!(t.expire(Time::from_secs(4)).is_empty());
        let removed = t.expire(Time::from_secs(5));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_traffic() {
        let mut t = FlowTable::new();
        t.apply_flow_mod(
            FlowModCommand::Add,
            OfMatch::any(),
            1,
            0,
            3,
            0,
            0,
            OFPP_NONE,
            vec![],
            Time::ZERO,
        );
        t.lookup(&key("1.1.1.1".parse().unwrap()), 1, Time::from_secs(2));
        assert!(
            t.expire(Time::from_secs(4)).is_empty(),
            "traffic at t=2 defers expiry"
        );
        let removed = t.expire(Time::from_secs(5));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::IdleTimeout);
    }

    /// The pre-index lookup semantics, verbatim: linear scan, last
    /// maximal effective priority wins.
    fn reference_lookup(entries: &[FlowEntry], key: &PacketKey) -> Option<u64> {
        entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.of_match.matches(key))
            .max_by_key(|(i, e)| (e.effective_priority(), *i))
            .map(|(_, e)| e.cookie)
    }

    fn exact_of(key: &PacketKey) -> OfMatch {
        OfMatch {
            wildcards: Wildcards(0),
            in_port: key.in_port,
            dl_src: key.dl_src,
            dl_dst: key.dl_dst,
            dl_vlan: 0xFFFF,
            dl_vlan_pcp: 0,
            dl_type: key.dl_type,
            nw_tos: key.nw_tos,
            nw_proto: key.nw_proto,
            nw_src: key.nw_src,
            nw_dst: key.nw_dst,
            tp_src: key.tp_src,
            tp_dst: key.tp_dst,
        }
    }

    #[test]
    fn indexed_lookup_matches_linear_reference() {
        // Drive the real table through a random mix of adds, deletes,
        // expiries and lookups, checking every lookup against the
        // historical linear scan. Cookies are unique per install, so
        // "same entry" is checked exactly, not structurally.
        for seed in 1u64..=8 {
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let mut t = FlowTable::new();
            let some_key = |r: u64| PacketKey {
                in_port: (r % 2) as u16 + 1,
                dl_src: MacAddr::ZERO,
                dl_dst: MacAddr::ZERO,
                dl_type: 0x0800,
                nw_tos: 0,
                nw_proto: 17,
                nw_src: Ipv4Addr::new(1, 1, 1, (r % 3) as u8),
                nw_dst: Ipv4Addr::new(10, (r % 2) as u8, (r % 5) as u8, 1),
                tp_src: 10,
                tp_dst: (r % 2) as u16,
            };
            for step in 0..2500u64 {
                let now = Time::from_secs(step / 100);
                match rng() % 10 {
                    0..=3 => {
                        // Install: exact entries and assorted wildcard
                        // shapes, colliding priorities on purpose.
                        let r = rng();
                        let m = match r % 5 {
                            0 => exact_of(&some_key(rng())),
                            1 => {
                                OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, (r % 2) as u8, 0, 0), 16)
                            }
                            2 => OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8),
                            3 => OfMatch::any(),
                            _ => OfMatch::lldp(),
                        };
                        t.apply_flow_mod(
                            FlowModCommand::Add,
                            m,
                            (rng() % 4) as u16,
                            step + 1, // unique cookie
                            (rng() % 3) as u16,
                            (rng() % 20) as u16,
                            0,
                            OFPP_NONE,
                            vec![Action::output((rng() % 4) as u16)],
                            now,
                        );
                    }
                    4 => {
                        t.apply_flow_mod(
                            FlowModCommand::Delete,
                            OfMatch::ipv4_dst_prefix(
                                Ipv4Addr::new(10, (rng() % 2) as u8, 0, 0),
                                16,
                            ),
                            0,
                            0,
                            0,
                            0,
                            0,
                            OFPP_NONE,
                            vec![],
                            now,
                        );
                    }
                    5 => {
                        t.expire(now);
                    }
                    _ => {
                        let key = some_key(rng());
                        let expected = reference_lookup(t.entries(), &key);
                        let got = t.lookup(&key, 64, now).map(|e| e.cookie);
                        assert_eq!(got, expected, "seed {seed} step {step}");
                    }
                }
            }
            assert!(t.lookup_count > 0 && t.matched_count > 0);
        }
    }

    #[test]
    fn stats_matching_filters() {
        let mut t = FlowTable::new();
        add(
            &mut t,
            OfMatch::ipv4_dst_prefix("10.1.0.0".parse().unwrap(), 16),
            1,
            1,
        );
        add(&mut t, OfMatch::lldp(), 1, 2);
        let all = t.stats_matching(&OfMatch::any(), OFPP_NONE);
        assert_eq!(all.len(), 2);
        let v4 = t.stats_matching(
            &OfMatch::ipv4_dst_prefix("10.0.0.0".parse().unwrap(), 8),
            OFPP_NONE,
        );
        assert_eq!(v4.len(), 1);
    }
}
