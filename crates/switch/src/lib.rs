//! # rf-switch — an OpenFlow 1.0 software switch
//!
//! The paper runs Open vSwitch 1.4.1 inside network namespaces as its
//! data plane. This crate provides the equivalent simulated element: an
//! [`OpenFlowSwitch`] agent that
//!
//! * performs the OF 1.0 handshake (HELLO, FEATURES, configuration)
//!   against whatever controller (or FlowVisor proxy) it is pointed at,
//!   reconnecting with backoff if the control channel drops;
//! * classifies every data-plane frame into an OF 1.0
//!   [`rf_openflow::PacketKey`] and looks it up in a priority-ordered
//!   wildcard [`flow_table::FlowTable`];
//! * punts table misses to the controller as `PACKET_IN` (buffering
//!   the frame and truncating to `miss_send_len`, like real OVS);
//! * executes `FLOW_MOD` / `PACKET_OUT` / `STATS` / `BARRIER` / `ECHO`,
//!   emits `FLOW_REMOVED` on timeout expiry and `PORT_STATUS` on port
//!   changes;
//! * rewrites frames per the OF 1.0 action set ([`datapath`]),
//!   recomputing IPv4/UDP checksums on header rewrites.

pub mod datapath;
pub mod flow_table;
pub mod switch;

pub use datapath::{apply_actions, Egress};
pub use flow_table::{FlowEntry, FlowTable, Removed};
pub use switch::{OpenFlowSwitch, SwitchConfig};
