//! The [`OpenFlowSwitch`] simulation agent — our Open vSwitch 1.4.1.

use crate::datapath::{apply_actions, Egress};
use crate::flow_table::{FlowTable, Removed};
use bytes::Bytes;
use rf_openflow::{
    Action, ErrorType, FlowStatsEntry, MessageReader, OfMessage, PacketInReason, PacketKey,
    PhyPort, PortNumber, PortStats, PortStatusReason, StatsBody, SwitchDesc, SwitchFeatures,
    TableStats, Wildcards, OFPP_NONE, OFP_NO_BUFFER,
};
use rf_sim::{Agent, ConnId, ConnProfile, Ctx, StreamEvent, Time};
use rf_wire::MacAddr;
use std::collections::HashMap;
use std::time::Duration;

/// Timer tokens.
const T_EXPIRY: u64 = 1;
/// Reconnect tokens are `T_RECONNECT_BASE + controller index`.
const T_RECONNECT_BASE: u64 = 1000;
const T_ECHO: u64 = 3;

/// Static configuration of one switch.
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    /// 64-bit datapath id (the paper keys VMs by this).
    pub dpid: u64,
    /// Data-plane ports are numbered `1..=num_ports`.
    pub num_ports: u16,
    /// Controllers to dial (agent, service). Open vSwitch supports
    /// several simultaneous controllers; the FlowVisor-bypass ablation
    /// uses two, normal deployments one (FlowVisor itself).
    pub controllers: Vec<(rf_sim::AgentId, u16)>,
    /// Control-channel latency profile.
    pub conn: ConnProfile,
    /// Packet buffer pool size (OVS default 256).
    pub n_buffers: u32,
    /// Flow-expiry scan period.
    pub expiry_interval: Duration,
    /// Keepalive echo period (0 = disabled).
    pub echo_interval: Duration,
    /// Reconnect backoff after the control channel drops.
    pub reconnect_backoff: Duration,
}

impl SwitchConfig {
    pub fn new(dpid: u64, num_ports: u16, controller: rf_sim::AgentId) -> SwitchConfig {
        SwitchConfig {
            dpid,
            num_ports,
            controllers: vec![(controller, 6633)],
            conn: ConnProfile::default(),
            n_buffers: 256,
            expiry_interval: Duration::from_millis(500),
            echo_interval: Duration::from_secs(15),
            reconnect_backoff: Duration::from_secs(1),
        }
    }

    /// Override the service number of the (single) default controller.
    pub fn with_service(mut self, service: u16) -> SwitchConfig {
        if let Some(c) = self.controllers.last_mut() {
            c.1 = service;
        }
        self
    }

    /// Dial an additional controller.
    pub fn add_controller(mut self, controller: rf_sim::AgentId, service: u16) -> SwitchConfig {
        self.controllers.push((controller, service));
        self
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ConnState {
    Disconnected,
    Connecting,
    /// HELLO exchanged; handshake driven by the controller from here.
    Ready,
}

/// One control-channel leg toward a controller.
#[derive(Clone)]
struct CtrlConn {
    target: (rf_sim::AgentId, u16),
    conn: Option<ConnId>,
    state: ConnState,
    reader: MessageReader,
}

/// An OpenFlow 1.0 switch agent.
#[derive(Clone)]
pub struct OpenFlowSwitch {
    cfg: SwitchConfig,
    ctrls: Vec<CtrlConn>,
    table: FlowTable,
    /// PACKET_IN buffer pool: id → (frame, in_port).
    buffers: HashMap<u32, (Bytes, PortNumber)>,
    next_buffer: u32,
    miss_send_len: u16,
    config_flags: u16,
    /// Per-port tx/rx counters, indexed by port-1.
    port_stats: Vec<PortStats>,
    /// Administratively disabled ports (no tx/rx).
    ports_down: Vec<bool>,
    xid: u32,
    /// Ports whose PORT_STATUS must be announced on the next tick.
    pending_port_status: Vec<PortNumber>,
    /// Copies of ERROR messages we sent (for tests/diagnostics).
    pub errors_sent: u64,
    /// Reused per-event decode buffer (capacity persists across events).
    msg_scratch: Vec<Option<(OfMessage, u32)>>,
    /// Per-port template of the last action-punt PACKET_IN:
    /// `(punted frame, cut, encoded message)`. LLDP probes punt the
    /// identical frame every round; on a match the wire bytes are the
    /// template with a fresh xid (the encoder is canonical, so that
    /// equals re-encoding). Keyed by content, so any other frame just
    /// misses and refreshes the entry.
    punt_cache: HashMap<PortNumber, (Bytes, usize, Bytes)>,
}

impl OpenFlowSwitch {
    pub fn new(cfg: SwitchConfig) -> OpenFlowSwitch {
        let n = cfg.num_ports as usize;
        let ctrls = cfg
            .controllers
            .iter()
            .map(|&target| CtrlConn {
                target,
                conn: None,
                state: ConnState::Disconnected,
                reader: MessageReader::new(),
            })
            .collect();
        OpenFlowSwitch {
            cfg,
            ctrls,
            table: FlowTable::new(),
            buffers: HashMap::new(),
            next_buffer: 1,
            miss_send_len: 128,
            config_flags: 0,
            port_stats: (0..n)
                .map(|i| PortStats {
                    port_no: (i + 1) as u16,
                    ..Default::default()
                })
                .collect(),
            ports_down: vec![false; n],
            xid: 1,
            pending_port_status: Vec::new(),
            errors_sent: 0,
            msg_scratch: Vec::new(),
            punt_cache: HashMap::new(),
        }
    }

    pub fn dpid(&self) -> u64 {
        self.cfg.dpid
    }

    /// Number of installed flow entries (test/bench accessor).
    pub fn flow_count(&self) -> usize {
        self.table.len()
    }

    /// Borrow the flow table (test/bench accessor).
    pub fn flow_table(&self) -> &FlowTable {
        &self.table
    }

    /// Whether every control channel is established.
    pub fn is_connected(&self) -> bool {
        self.ctrls.iter().all(|c| c.state == ConnState::Ready)
    }

    /// Administratively take a port down/up; emits PORT_STATUS.
    /// Exposed for failure-injection experiments (tests reach it via
    /// `Sim::agent_as_mut`, then the change takes effect immediately;
    /// the PORT_STATUS goes out on the next expiry tick).
    pub fn set_port_admin(&mut self, port: PortNumber, down: bool) {
        if let Some(slot) = self.ports_down.get_mut((port - 1) as usize) {
            *slot = down;
            self.pending_port_status.push(port);
        }
    }

    fn phy_ports(&self) -> Vec<PhyPort> {
        (1..=self.cfg.num_ports)
            .map(|p| {
                let mut port = PhyPort::new(
                    p,
                    MacAddr::from_dpid_port(self.cfg.dpid, p),
                    format!("eth{p}"),
                );
                if self.ports_down[(p - 1) as usize] {
                    port.config |= rf_openflow::ports::OFPPC_PORT_DOWN;
                    port.state |= rf_openflow::ports::OFPPS_LINK_DOWN;
                }
                port
            })
            .collect()
    }

    fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    /// Broadcast an asynchronous message to every ready controller.
    fn send(&mut self, ctx: &mut Ctx<'_>, msg: OfMessage, xid: u32) {
        let encoded = msg.encode(xid);
        self.send_raw(ctx, encoded);
    }

    /// Send pre-encoded bytes to every ready control channel.
    fn send_raw(&mut self, ctx: &mut Ctx<'_>, encoded: Bytes) {
        for c in &self.ctrls {
            if c.state == ConnState::Ready {
                if let Some(conn) = c.conn {
                    ctx.conn_send(conn, encoded.clone());
                }
            }
        }
    }

    /// Reply on one specific control channel.
    fn send_to(&mut self, ctx: &mut Ctx<'_>, idx: usize, msg: OfMessage, xid: u32) {
        if let Some(conn) = self.ctrls[idx].conn {
            ctx.conn_send(conn, msg.encode(xid));
        }
    }

    fn connect(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let target = self.ctrls[idx].target;
        let profile = self.cfg.conn;
        let c = &mut self.ctrls[idx];
        c.state = ConnState::Connecting;
        c.reader = MessageReader::new();
        c.conn = Some(ctx.connect(target.0, target.1, profile));
    }

    /// Emit PACKET_IN for a table miss (buffering the frame).
    fn packet_in(&mut self, ctx: &mut Ctx<'_>, in_port: PortNumber, frame: Bytes) {
        if !self.ctrls.iter().any(|c| c.state == ConnState::Ready) {
            ctx.count("switch.miss_no_controller", 1);
            return;
        }
        let total_len = frame.len() as u16;
        let (buffer_id, data) = if (self.buffers.len() as u32) < self.cfg.n_buffers {
            let id = self.next_buffer;
            self.next_buffer = self.next_buffer.wrapping_add(1).max(1);
            self.buffers.insert(id, (frame.clone(), in_port));
            let cut = frame.len().min(self.miss_send_len as usize);
            (id, frame.slice(..cut))
        } else {
            (OFP_NO_BUFFER, frame)
        };
        let xid = self.next_xid();
        ctx.count("of.packet_in", 1);
        self.send(
            ctx,
            OfMessage::PacketIn {
                buffer_id,
                total_len,
                in_port,
                reason: PacketInReason::NoMatch,
                data,
            },
            xid,
        );
    }

    /// Run a frame through the flow table and execute the result.
    fn pipeline(&mut self, ctx: &mut Ctx<'_>, in_port: PortNumber, frame: Bytes) {
        let Some(key) = PacketKey::from_frame_bytes(in_port, &frame) else {
            ctx.count("switch.unparseable", 1);
            return;
        };
        let actions: Option<Vec<Action>> = self
            .table
            .lookup(&key, frame.len(), ctx.now())
            .map(|e| e.actions.clone());
        match actions {
            Some(actions) => self.execute(ctx, in_port, frame, &actions),
            None => self.packet_in(ctx, in_port, frame),
        }
    }

    fn execute(
        &mut self,
        ctx: &mut Ctx<'_>,
        in_port: PortNumber,
        frame: Bytes,
        actions: &[Action],
    ) {
        for egress in apply_actions(&frame, actions, in_port, self.cfg.num_ports) {
            match egress {
                Egress::Port(p, bytes) => self.tx(ctx, p, bytes),
                Egress::Controller { max_len, frame } => {
                    let total_len = frame.len() as u16;
                    let cut = if max_len == 0 {
                        frame.len()
                    } else {
                        frame.len().min(max_len as usize)
                    };
                    let xid = self.next_xid();
                    // Template fast path for small repeated punts (the
                    // LLDP probe cycle); bounded compare, same bytes.
                    let cached = frame.len() <= 128
                        && self
                            .punt_cache
                            .get(&in_port)
                            .is_some_and(|(f, c, _)| *c == cut && *f == frame);
                    if cached {
                        let (_, _, template) = &self.punt_cache[&in_port];
                        let encoded = rf_openflow::reframe_with_xid(template, xid);
                        self.send_raw(ctx, encoded);
                    } else {
                        let encoded = OfMessage::PacketIn {
                            buffer_id: OFP_NO_BUFFER,
                            total_len,
                            in_port,
                            reason: PacketInReason::Action,
                            data: frame.slice(..cut),
                        }
                        .encode(xid);
                        if frame.len() <= 128 {
                            self.punt_cache
                                .insert(in_port, (frame.clone(), cut, encoded.clone()));
                        }
                        self.send_raw(ctx, encoded);
                    }
                }
                Egress::Table(bytes) => self.pipeline(ctx, in_port, bytes),
            }
        }
    }

    fn tx(&mut self, ctx: &mut Ctx<'_>, port: PortNumber, frame: Bytes) {
        let idx = (port - 1) as usize;
        if self.ports_down.get(idx).copied().unwrap_or(true) {
            if let Some(s) = self.port_stats.get_mut(idx) {
                s.tx_dropped += 1;
            }
            return;
        }
        if let Some(s) = self.port_stats.get_mut(idx) {
            s.tx_packets += 1;
            s.tx_bytes += frame.len() as u64;
        }
        ctx.send_frame(port as u32, frame);
    }

    fn flow_removed_msgs(&mut self, ctx: &mut Ctx<'_>, removed: Vec<Removed>) {
        for r in removed {
            if r.entry.flags & rf_openflow::messages::OFPFF_SEND_FLOW_REM != 0 {
                let dur = ctx.now().since(r.entry.installed_at);
                let xid = self.next_xid();
                self.send(
                    ctx,
                    OfMessage::FlowRemoved {
                        of_match: r.entry.of_match,
                        cookie: r.entry.cookie,
                        priority: r.entry.priority,
                        reason: r.reason,
                        duration_sec: dur.as_secs() as u32,
                        duration_nsec: dur.subsec_nanos(),
                        idle_timeout: r.entry.idle_timeout,
                        packet_count: r.entry.packet_count,
                        byte_count: r.entry.byte_count,
                    },
                    xid,
                );
            }
        }
    }

    fn handle_message(&mut self, ctx: &mut Ctx<'_>, idx: usize, msg: OfMessage, xid: u32) {
        match msg {
            OfMessage::Hello => {
                self.ctrls[idx].state = ConnState::Ready;
                ctx.trace_debug("of.hello", "control channel ready");
            }
            OfMessage::EchoRequest(data) => {
                self.send_to(ctx, idx, OfMessage::EchoReply(data), xid);
            }
            OfMessage::EchoReply(_) => {}
            OfMessage::FeaturesRequest => {
                let reply = OfMessage::FeaturesReply(SwitchFeatures {
                    datapath_id: self.cfg.dpid,
                    n_buffers: self.cfg.n_buffers,
                    n_tables: 1,
                    capabilities: 0x0000_0087, // FLOW_STATS|TABLE_STATS|PORT_STATS|ARP_MATCH_IP
                    actions: 0x0000_0FFF,      // all OF 1.0 actions
                    ports: self.phy_ports(),
                });
                self.send_to(ctx, idx, reply, xid);
            }
            OfMessage::SetConfig {
                flags,
                miss_send_len,
            } => {
                self.config_flags = flags;
                self.miss_send_len = miss_send_len;
            }
            OfMessage::GetConfigRequest => {
                let reply = OfMessage::GetConfigReply {
                    flags: self.config_flags,
                    miss_send_len: self.miss_send_len,
                };
                self.send_to(ctx, idx, reply, xid);
            }
            OfMessage::FlowMod {
                of_match,
                cookie,
                command,
                idle_timeout,
                hard_timeout,
                priority,
                buffer_id,
                out_port,
                flags,
                actions,
            } => {
                ctx.count("of.flow_mod", 1);
                let removed = self.table.apply_flow_mod(
                    command,
                    of_match,
                    priority,
                    cookie,
                    idle_timeout,
                    hard_timeout,
                    flags,
                    out_port,
                    actions.clone(),
                    ctx.now(),
                );
                self.flow_removed_msgs(ctx, removed);
                // Release the buffered packet through the new state.
                if buffer_id != OFP_NO_BUFFER {
                    if let Some((frame, in_port)) = self.buffers.remove(&buffer_id) {
                        self.pipeline(ctx, in_port, frame);
                    }
                }
            }
            OfMessage::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                ctx.count("of.packet_out", 1);
                let frame = if buffer_id != OFP_NO_BUFFER {
                    match self.buffers.remove(&buffer_id) {
                        Some((f, _)) => f,
                        None => {
                            self.errors_sent += 1;
                            let xid2 = self.next_xid();
                            self.send_to(
                                ctx,
                                idx,
                                OfMessage::Error {
                                    err_type: ErrorType::BadRequest,
                                    code: 8, // OFPBRC_BUFFER_UNKNOWN
                                    data: Bytes::new(),
                                },
                                xid2,
                            );
                            return;
                        }
                    }
                } else {
                    data
                };
                self.execute(ctx, in_port, frame, &actions);
            }
            OfMessage::StatsRequest { body } => {
                let reply = self.stats_reply(ctx.now(), body);
                self.send_to(ctx, idx, OfMessage::StatsReply { body: reply }, xid);
            }
            OfMessage::BarrierRequest => {
                // Processing is already serial in the simulation, so a
                // barrier completes immediately.
                self.send_to(ctx, idx, OfMessage::BarrierReply, xid);
            }
            OfMessage::Vendor { .. } => {
                self.errors_sent += 1;
                let xid2 = self.next_xid();
                self.send_to(
                    ctx,
                    idx,
                    OfMessage::Error {
                        err_type: ErrorType::BadRequest,
                        code: 3, // OFPBRC_BAD_VENDOR
                        data: Bytes::new(),
                    },
                    xid2,
                );
            }
            // Symmetric / controller-role messages a switch should not
            // receive; reply with an error like OVS does.
            _ => {
                self.errors_sent += 1;
                let xid2 = self.next_xid();
                self.send_to(
                    ctx,
                    idx,
                    OfMessage::Error {
                        err_type: ErrorType::BadRequest,
                        code: 1, // OFPBRC_BAD_TYPE
                        data: Bytes::new(),
                    },
                    xid2,
                );
            }
        }
    }

    fn stats_reply(&mut self, now: Time, body: StatsBody) -> StatsBody {
        match body {
            StatsBody::DescRequest => StatsBody::DescReply(SwitchDesc {
                mfr_desc: "Ghent University - iMinds (reproduction)".into(),
                hw_desc: "rf-sim virtual datapath".into(),
                sw_desc: "rf-switch 0.1 (Open vSwitch 1.4.1 substitute)".into(),
                serial_num: format!("{:016x}", self.cfg.dpid),
                dp_desc: format!("dpid {:#x}", self.cfg.dpid),
            }),
            StatsBody::FlowRequest(req) => {
                let entries: Vec<FlowStatsEntry> = self
                    .table
                    .stats_matching(&req.of_match, req.out_port)
                    .iter()
                    .map(|e| e.to_stats(now))
                    .collect();
                StatsBody::FlowReply(entries)
            }
            StatsBody::AggregateRequest(req) => {
                let matching = self.table.stats_matching(&req.of_match, req.out_port);
                StatsBody::AggregateReply(rf_openflow::AggregateStats {
                    packet_count: matching.iter().map(|e| e.packet_count).sum(),
                    byte_count: matching.iter().map(|e| e.byte_count).sum(),
                    flow_count: matching.len() as u32,
                })
            }
            StatsBody::TableRequest => StatsBody::TableReply(vec![TableStats {
                table_id: 0,
                name: "classifier".into(),
                wildcards: Wildcards::ALL,
                max_entries: 1 << 20,
                active_count: self.table.len() as u32,
                lookup_count: self.table.lookup_count,
                matched_count: self.table.matched_count,
            }]),
            StatsBody::PortRequest(port) => {
                let ports = if port == OFPP_NONE {
                    self.port_stats.clone()
                } else {
                    self.port_stats
                        .iter()
                        .filter(|p| p.port_no == port)
                        .cloned()
                        .collect()
                };
                StatsBody::PortReply(ports)
            }
            // Requests only arrive as requests; replies would be a
            // protocol violation handled by the caller.
            other => other,
        }
    }

    /// Queue of ports whose PORT_STATUS must be announced.
    fn drain_port_status(&mut self, ctx: &mut Ctx<'_>) {
        if !self.ctrls.iter().any(|c| c.state == ConnState::Ready) {
            return;
        }
        let pending = std::mem::take(&mut self.pending_port_status);
        for p in pending {
            let desc = self
                .phy_ports()
                .into_iter()
                .find(|d| d.port_no == p)
                .expect("port exists");
            let xid = self.next_xid();
            self.send(
                ctx,
                OfMessage::PortStatus {
                    reason: PortStatusReason::Modify,
                    desc,
                },
                xid,
            );
        }
    }
}

impl Agent for OpenFlowSwitch {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for idx in 0..self.ctrls.len() {
            self.connect(ctx, idx);
        }
        ctx.schedule(self.cfg.expiry_interval, T_EXPIRY);
        if !self.cfg.echo_interval.is_zero() {
            ctx.schedule(self.cfg.echo_interval, T_ECHO);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            T_EXPIRY => {
                let removed = self.table.expire(ctx.now());
                self.flow_removed_msgs(ctx, removed);
                self.drain_port_status(ctx);
                ctx.schedule(self.cfg.expiry_interval, T_EXPIRY);
            }
            T_ECHO => {
                if self.ctrls.iter().any(|c| c.state == ConnState::Ready) {
                    let xid = self.next_xid();
                    self.send(ctx, OfMessage::EchoRequest(Bytes::from_static(b"ka")), xid);
                }
                ctx.schedule(self.cfg.echo_interval, T_ECHO);
            }
            t if t >= T_RECONNECT_BASE => {
                let idx = (t - T_RECONNECT_BASE) as usize;
                if idx < self.ctrls.len() && self.ctrls[idx].state == ConnState::Disconnected {
                    self.connect(ctx, idx);
                }
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: u32, frame: Bytes) {
        let port = port as u16;
        let idx = (port - 1) as usize;
        if self.ports_down.get(idx).copied().unwrap_or(true) {
            if let Some(s) = self.port_stats.get_mut(idx) {
                s.rx_dropped += 1;
            }
            return;
        }
        if let Some(s) = self.port_stats.get_mut(idx) {
            s.rx_packets += 1;
            s.rx_bytes += frame.len() as u64;
        }
        self.pipeline(ctx, port, frame);
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, event: StreamEvent) {
        let Some(idx) = self.ctrls.iter().position(|c| c.conn == Some(conn)) else {
            return;
        };
        match event {
            StreamEvent::Opened { .. } => {
                // OF handshake starts with HELLO from both sides.
                let xid = self.next_xid();
                self.send_to(ctx, idx, OfMessage::Hello, xid);
            }
            StreamEvent::Data(data) => {
                let mut msgs = std::mem::take(&mut self.msg_scratch);
                msgs.clear();
                {
                    let reader = &mut self.ctrls[idx].reader;
                    reader.push_bytes(data);
                    loop {
                        match reader.next() {
                            Some(Ok(m)) => msgs.push(Some(m)),
                            Some(Err(_)) => msgs.push(None),
                            None => break,
                        }
                    }
                }
                for m in msgs.drain(..) {
                    match m {
                        Some((msg, xid)) => self.handle_message(ctx, idx, msg, xid),
                        None => ctx.count("switch.decode_error", 1),
                    }
                }
                self.msg_scratch = msgs;
            }
            StreamEvent::Closed => {
                ctx.trace("of.disconnected", "control channel lost; will reconnect");
                self.ctrls[idx].conn = None;
                self.ctrls[idx].state = ConnState::Disconnected;
                ctx.schedule(self.cfg.reconnect_backoff, T_RECONNECT_BASE + idx as u64);
            }
        }
    }
}
