//! Behavioural tests for the OpenFlow switch agent: handshake, table
//! miss → PACKET_IN, FLOW_MOD install, buffered-packet release,
//! PACKET_OUT, stats, timeouts, reconnect.

use bytes::Bytes;
use rf_openflow::{
    Action, FlowModCommand, MessageReader, OfMatch, OfMessage, PacketInReason, StatsBody,
    OFPP_NONE, OFP_NO_BUFFER,
};
use rf_sim::{Agent, AgentId, ConnId, Ctx, LinkProfile, Sim, SimConfig, StreamEvent};
use rf_switch::{OpenFlowSwitch, SwitchConfig};
use rf_wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, UdpPacket};
use std::net::Ipv4Addr;
use std::time::Duration;

/// A scripted controller for testing: completes the handshake, records
/// everything, and sends canned messages on timers.
#[derive(Default, Clone)]
struct MockController {
    conns: Vec<ConnId>,
    readers: Vec<(ConnId, MessageReader)>,
    pub received: Vec<(OfMessage, u32)>,
    /// Messages to send (delay, message, xid) after start.
    script: Vec<(Duration, OfMessage, u32)>,
    /// Respond to PACKET_IN by installing this flow (match, actions)
    /// with the packet's buffer id.
    on_packet_in_install: Option<(OfMatch, Vec<Action>)>,
    pub features: Vec<rf_openflow::SwitchFeatures>,
}

impl MockController {
    fn reader_for(&mut self, conn: ConnId) -> &mut MessageReader {
        if let Some(i) = self.readers.iter().position(|(c, _)| *c == conn) {
            &mut self.readers[i].1
        } else {
            self.readers.push((conn, MessageReader::new()));
            &mut self.readers.last_mut().unwrap().1
        }
    }
}

impl Agent for MockController {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(6633);
        for (i, (delay, _, _)) in self.script.iter().enumerate() {
            ctx.schedule(*delay, 1000 + i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let idx = (token - 1000) as usize;
        if let Some((_, msg, xid)) = self.script.get(idx).cloned() {
            if let Some(&conn) = self.conns.first() {
                ctx.conn_send(conn, msg.encode(xid));
            }
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, event: StreamEvent) {
        match event {
            StreamEvent::Opened { .. } => {
                self.conns.push(conn);
                ctx.conn_send(conn, OfMessage::Hello.encode(1));
                ctx.conn_send(conn, OfMessage::FeaturesRequest.encode(2));
            }
            StreamEvent::Data(data) => {
                let msgs = {
                    let reader = self.reader_for(conn);
                    reader.push(&data);
                    let mut v = Vec::new();
                    while let Some(r) = reader.next() {
                        if let Ok(m) = r {
                            v.push(m);
                        }
                    }
                    v
                };
                for (msg, xid) in msgs {
                    if let OfMessage::FeaturesReply(f) = &msg {
                        self.features.push(f.clone());
                    }
                    if let OfMessage::PacketIn { buffer_id, .. } = &msg {
                        if let Some((m, actions)) = self.on_packet_in_install.clone() {
                            let fm = OfMessage::FlowMod {
                                of_match: m,
                                cookie: 0,
                                command: FlowModCommand::Add,
                                idle_timeout: 0,
                                hard_timeout: 0,
                                priority: 100,
                                buffer_id: *buffer_id,
                                out_port: OFPP_NONE,
                                flags: 0,
                                actions,
                            };
                            ctx.conn_send(conn, fm.encode(99));
                        }
                    }
                    self.received.push((msg, xid));
                }
            }
            StreamEvent::Closed => {}
        }
    }
}

/// Captures frames arriving at a sim port (plays the role of a host).
#[derive(Default, Clone)]
struct FrameSink {
    pub frames: Vec<(u32, Bytes)>,
    /// Frame to transmit at start: (port, frame, delay).
    tx: Option<(u32, Bytes, Duration)>,
}

impl Agent for FrameSink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((_, _, delay)) = self.tx.as_ref() {
            ctx.schedule(*delay, 1);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if let Some((port, frame, _)) = self.tx.clone() {
            ctx.send_frame(port, frame);
        }
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, port: u32, frame: Bytes) {
        self.frames.push((port, frame));
    }
}

fn udp_frame(dst: Ipv4Addr) -> Bytes {
    let src = Ipv4Addr::new(192, 168, 0, 1);
    let udp = UdpPacket::new(4000, 5000, Bytes::from_static(b"data"));
    let ip = Ipv4Packet::new(src, dst, IpProtocol::UDP, udp.emit(src, dst));
    EthernetFrame::new(
        MacAddr([2, 0, 0, 0, 0, 9]),
        MacAddr([2, 0, 0, 0, 0, 1]),
        EtherType::IPV4,
        ip.emit(),
    )
    .emit()
}

struct Bench {
    sim: Sim,
    ctrl: AgentId,
    sw: AgentId,
    host_a: AgentId,
    host_b: AgentId,
}

/// Switch with 2 ports: port 1 ↔ host_a, port 2 ↔ host_b.
fn bench(ctrl: MockController) -> Bench {
    let mut sim = Sim::new(SimConfig::default());
    let ctrl = sim.add_agent("controller", Box::new(ctrl));
    let sw = sim.add_agent(
        "sw1",
        Box::new(OpenFlowSwitch::new(SwitchConfig::new(0x1C, 2, ctrl))),
    );
    let host_a = sim.add_agent("host_a", Box::new(FrameSink::default()));
    let host_b = sim.add_agent("host_b", Box::new(FrameSink::default()));
    sim.add_link((sw, 1), (host_a, 1), LinkProfile::default());
    sim.add_link((sw, 2), (host_b, 1), LinkProfile::default());
    Bench {
        sim,
        ctrl,
        sw,
        host_a,
        host_b,
    }
}

#[test]
fn handshake_reports_features() {
    let mut b = bench(MockController::default());
    b.sim.run_until(rf_sim::Time::from_secs(1));
    let ctrl = b.sim.agent_as::<MockController>(b.ctrl).unwrap();
    assert_eq!(ctrl.features.len(), 1);
    let f = &ctrl.features[0];
    assert_eq!(f.datapath_id, 0x1C);
    assert_eq!(f.ports.len(), 2);
    assert_eq!(f.n_tables, 1);
    assert!(b
        .sim
        .agent_as::<OpenFlowSwitch>(b.sw)
        .unwrap()
        .is_connected());
}

#[test]
fn table_miss_sends_packet_in_with_buffer() {
    let mut b = bench(MockController::default());
    // Host A sends a frame after the handshake settles.
    b.sim.agent_as_mut::<FrameSink>(b.host_a).unwrap().tx = Some((
        1,
        udp_frame(Ipv4Addr::new(10, 0, 0, 5)),
        Duration::from_secs(1),
    ));
    b.sim.run_until(rf_sim::Time::from_secs(2));
    let ctrl = b.sim.agent_as::<MockController>(b.ctrl).unwrap();
    let pins: Vec<_> = ctrl
        .received
        .iter()
        .filter_map(|(m, _)| match m {
            OfMessage::PacketIn {
                buffer_id,
                in_port,
                reason,
                data,
                total_len,
            } => Some((*buffer_id, *in_port, *reason, data.len(), *total_len)),
            _ => None,
        })
        .collect();
    assert_eq!(pins.len(), 1);
    let (buffer_id, in_port, reason, data_len, total_len) = pins[0];
    assert_ne!(buffer_id, OFP_NO_BUFFER);
    assert_eq!(in_port, 1);
    assert_eq!(reason, PacketInReason::NoMatch);
    assert!(data_len <= 128, "miss_send_len truncation");
    assert!(total_len as usize >= data_len);
}

#[test]
fn flow_mod_with_buffer_releases_packet() {
    let ctrl = MockController {
        on_packet_in_install: Some((
            OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8),
            vec![Action::output(2)],
        )),
        ..MockController::default()
    };
    let mut b = bench(ctrl);
    b.sim.agent_as_mut::<FrameSink>(b.host_a).unwrap().tx = Some((
        1,
        udp_frame(Ipv4Addr::new(10, 0, 0, 5)),
        Duration::from_secs(1),
    ));
    b.sim.run_until(rf_sim::Time::from_secs(2));
    // The buffered frame must come out of port 2 after the FLOW_MOD.
    let host_b = b.sim.agent_as::<FrameSink>(b.host_b).unwrap();
    assert_eq!(host_b.frames.len(), 1);
    // And subsequent frames flow without further PACKET_INs.
    b.sim.agent_as_mut::<FrameSink>(b.host_a).unwrap().tx = Some((
        1,
        udp_frame(Ipv4Addr::new(10, 0, 0, 6)),
        Duration::from_millis(100),
    ));
    // re-trigger the tx timer by scheduling through a fresh run window
    b.sim.run_until(rf_sim::Time::from_secs(3));
    let sw = b.sim.agent_as::<OpenFlowSwitch>(b.sw).unwrap();
    assert_eq!(sw.flow_count(), 1);
}

#[test]
fn packet_out_floods() {
    let ctrl = MockController {
        script: vec![(
            Duration::from_secs(1),
            OfMessage::PacketOut {
                buffer_id: OFP_NO_BUFFER,
                in_port: OFPP_NONE,
                actions: vec![Action::output(rf_openflow::OFPP_FLOOD)],
                data: udp_frame(Ipv4Addr::new(10, 1, 1, 1)),
            },
            42,
        )],
        ..MockController::default()
    };
    let mut b = bench(ctrl);
    b.sim.run_until(rf_sim::Time::from_secs(2));
    assert_eq!(
        b.sim.agent_as::<FrameSink>(b.host_a).unwrap().frames.len(),
        1
    );
    assert_eq!(
        b.sim.agent_as::<FrameSink>(b.host_b).unwrap().frames.len(),
        1
    );
}

#[test]
fn echo_request_answered() {
    let ctrl = MockController {
        script: vec![(
            Duration::from_secs(1),
            OfMessage::EchoRequest(Bytes::from_static(b"hello?")),
            7,
        )],
        ..MockController::default()
    };
    let mut b = bench(ctrl);
    b.sim.run_until(rf_sim::Time::from_secs(2));
    let ctrl = b.sim.agent_as::<MockController>(b.ctrl).unwrap();
    assert!(ctrl
        .received
        .iter()
        .any(|(m, xid)| matches!(m, OfMessage::EchoReply(d) if &d[..] == b"hello?") && *xid == 7));
}

#[test]
fn barrier_answered_with_same_xid() {
    let ctrl = MockController {
        script: vec![(Duration::from_secs(1), OfMessage::BarrierRequest, 0xAB)],
        ..MockController::default()
    };
    let mut b = bench(ctrl);
    b.sim.run_until(rf_sim::Time::from_secs(2));
    let ctrl = b.sim.agent_as::<MockController>(b.ctrl).unwrap();
    assert!(ctrl
        .received
        .iter()
        .any(|(m, xid)| matches!(m, OfMessage::BarrierReply) && *xid == 0xAB));
}

#[test]
fn stats_desc_and_table() {
    let ctrl = MockController {
        script: vec![
            (
                Duration::from_secs(1),
                OfMessage::StatsRequest {
                    body: StatsBody::DescRequest,
                },
                1,
            ),
            (
                Duration::from_secs(1),
                OfMessage::StatsRequest {
                    body: StatsBody::TableRequest,
                },
                2,
            ),
        ],
        ..MockController::default()
    };
    let mut b = bench(ctrl);
    b.sim.run_until(rf_sim::Time::from_secs(2));
    let ctrl = b.sim.agent_as::<MockController>(b.ctrl).unwrap();
    let desc = ctrl.received.iter().find_map(|(m, _)| match m {
        OfMessage::StatsReply {
            body: StatsBody::DescReply(d),
        } => Some(d.clone()),
        _ => None,
    });
    assert!(desc.unwrap().sw_desc.contains("rf-switch"));
    let table = ctrl.received.iter().find_map(|(m, _)| match m {
        OfMessage::StatsReply {
            body: StatsBody::TableReply(t),
        } => Some(t.clone()),
        _ => None,
    });
    assert_eq!(table.unwrap()[0].active_count, 0);
}

#[test]
fn hard_timeout_emits_flow_removed() {
    let ctrl = MockController {
        script: vec![(
            Duration::from_secs(1),
            OfMessage::FlowMod {
                of_match: OfMatch::any(),
                cookie: 5,
                command: FlowModCommand::Add,
                idle_timeout: 0,
                hard_timeout: 2,
                priority: 1,
                buffer_id: OFP_NO_BUFFER,
                out_port: OFPP_NONE,
                flags: rf_openflow::messages::OFPFF_SEND_FLOW_REM,
                actions: vec![Action::output(2)],
            },
            1,
        )],
        ..MockController::default()
    };
    let mut b = bench(ctrl);
    b.sim.run_until(rf_sim::Time::from_secs(5));
    let sw = b.sim.agent_as::<OpenFlowSwitch>(b.sw).unwrap();
    assert_eq!(sw.flow_count(), 0, "entry must expire");
    let ctrl = b.sim.agent_as::<MockController>(b.ctrl).unwrap();
    let removed = ctrl.received.iter().find_map(|(m, _)| match m {
        OfMessage::FlowRemoved { cookie, reason, .. } => Some((*cookie, *reason)),
        _ => None,
    });
    let (cookie, reason) = removed.expect("FLOW_REMOVED must be sent");
    assert_eq!(cookie, 5);
    assert_eq!(reason, rf_openflow::FlowRemovedReason::HardTimeout);
}

#[test]
fn switch_reconnects_after_controller_restart() {
    // Controller that closes the first connection after 1 s.
    #[derive(Default, Clone)]
    struct FlakyController {
        conns: Vec<ConnId>,
        opens: u32,
    }
    impl Agent for FlakyController {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.listen(6633);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            if let Some(&c) = self.conns.first() {
                ctx.conn_close(c);
            }
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, event: StreamEvent) {
            if let StreamEvent::Opened { .. } = event {
                self.opens += 1;
                self.conns.push(conn);
                ctx.conn_send(conn, OfMessage::Hello.encode(1));
                if self.opens == 1 {
                    ctx.schedule(Duration::from_secs(1), 0);
                }
            }
        }
    }
    let mut sim = Sim::new(SimConfig::default());
    let ctrl = sim.add_agent("flaky", Box::new(FlakyController::default()));
    let sw = sim.add_agent(
        "sw",
        Box::new(OpenFlowSwitch::new(SwitchConfig::new(1, 1, ctrl))),
    );
    let host = sim.add_agent("h", Box::new(FrameSink::default()));
    sim.add_link((sw, 1), (host, 1), LinkProfile::default());
    sim.run_until(rf_sim::Time::from_secs(5));
    assert_eq!(
        sim.agent_as::<FlakyController>(ctrl).unwrap().opens,
        2,
        "switch must redial after disconnect"
    );
    assert!(sim.agent_as::<OpenFlowSwitch>(sw).unwrap().is_connected());
}

#[test]
fn port_admin_down_drops_traffic_and_reports_status() {
    let mut b = bench(MockController::default());
    b.sim.run_until(rf_sim::Time::from_secs(1));
    b.sim
        .agent_as_mut::<OpenFlowSwitch>(b.sw)
        .unwrap()
        .set_port_admin(1, true);
    b.sim.agent_as_mut::<FrameSink>(b.host_a).unwrap().tx = Some((
        1,
        udp_frame(Ipv4Addr::new(10, 0, 0, 5)),
        Duration::from_millis(100),
    ));
    b.sim.run_until(rf_sim::Time::from_secs(3));
    let ctrl = b.sim.agent_as::<MockController>(b.ctrl).unwrap();
    // No PACKET_IN (port is down) but a PORT_STATUS modify.
    assert!(!ctrl
        .received
        .iter()
        .any(|(m, _)| matches!(m, OfMessage::PacketIn { .. })));
    assert!(ctrl.received.iter().any(|(m, _)| matches!(
        m,
        OfMessage::PortStatus { desc, .. } if !desc.is_link_up()
    )));
}
