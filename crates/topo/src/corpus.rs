//! Checked-in WAN topology corpus.
//!
//! A compact TopologyZoo-style format, one file per network under
//! `crates/topo/corpus/*.topo`:
//!
//! ```text
//! # free-form comment lines (only at the top)
//! name abilene
//! node Seattle -122.33 47.61
//! node Sunnyvale -122.04 37.37
//! link 0 1
//! ```
//!
//! `node` lines carry a whitespace-free name and a (lon, lat) position
//! in degrees; `link` lines reference nodes by zero-based index in
//! declaration order. Parsing is strict — unknown keywords, bad
//! numbers, out-of-range indices, self-loops and duplicate links are
//! typed errors, not panics — and [`emit`] regenerates the canonical
//! bytes so every checked-in file round-trips exactly (see the tests).

use crate::graph::Topology;
use std::fmt;

/// All checked-in corpus files, sorted by slug. `include_str!` keeps
/// the loader dependency-free: the corpus travels inside the binary.
static CORPUS: &[(&str, &str)] = &[
    ("aarnet", include_str!("../corpus/aarnet.topo")),
    ("abilene", include_str!("../corpus/abilene.topo")),
    ("ansnet", include_str!("../corpus/ansnet.topo")),
    ("arpanet", include_str!("../corpus/arpanet.topo")),
    ("att-na", include_str!("../corpus/att-na.topo")),
    ("bellcanada", include_str!("../corpus/bellcanada.topo")),
    ("belnet", include_str!("../corpus/belnet.topo")),
    ("bt-europe", include_str!("../corpus/bt-europe.topo")),
    ("canarie", include_str!("../corpus/canarie.topo")),
    ("cernet", include_str!("../corpus/cernet.topo")),
    ("cesnet", include_str!("../corpus/cesnet.topo")),
    ("claranet", include_str!("../corpus/claranet.topo")),
    ("cogent-us", include_str!("../corpus/cogent-us.topo")),
    ("dfn", include_str!("../corpus/dfn.topo")),
    ("ebone", include_str!("../corpus/ebone.topo")),
    ("ernet", include_str!("../corpus/ernet.topo")),
    ("esnet", include_str!("../corpus/esnet.topo")),
    ("funet", include_str!("../corpus/funet.topo")),
    ("garr", include_str!("../corpus/garr.topo")),
    ("geant", include_str!("../corpus/geant.topo")),
    ("grnet", include_str!("../corpus/grnet.topo")),
    ("heanet", include_str!("../corpus/heanet.topo")),
    ("janet", include_str!("../corpus/janet.topo")),
    ("kreonet", include_str!("../corpus/kreonet.topo")),
    ("level3", include_str!("../corpus/level3.topo")),
    ("nordu", include_str!("../corpus/nordu.topo")),
    ("nsfnet", include_str!("../corpus/nsfnet.topo")),
    ("os3e", include_str!("../corpus/os3e.topo")),
    ("pionier", include_str!("../corpus/pionier.topo")),
    ("reannz", include_str!("../corpus/reannz.topo")),
    ("redclara", include_str!("../corpus/redclara.topo")),
    ("rediris", include_str!("../corpus/rediris.topo")),
    ("renater", include_str!("../corpus/renater.topo")),
    ("rnp", include_str!("../corpus/rnp.topo")),
    ("sanet", include_str!("../corpus/sanet.topo")),
    ("sanren", include_str!("../corpus/sanren.topo")),
    ("sinet", include_str!("../corpus/sinet.topo")),
    ("sprint", include_str!("../corpus/sprint.topo")),
    ("sunet", include_str!("../corpus/sunet.topo")),
    ("surfnet", include_str!("../corpus/surfnet.topo")),
    ("switch", include_str!("../corpus/switch.topo")),
    ("tein", include_str!("../corpus/tein.topo")),
    ("uninett", include_str!("../corpus/uninett.topo")),
    ("uunet", include_str!("../corpus/uunet.topo")),
];

/// What went wrong while parsing a `.topo` file. Every variant names
/// the 1-based line and the offending token so malformed files are
/// debuggable from the message alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorpusError {
    /// First non-comment line was not `name <slug>`.
    MissingName { line: usize },
    /// Slug contains characters outside `[a-z0-9-]`.
    BadSlug { line: usize, slug: String },
    /// Line does not start with a known keyword.
    UnknownKeyword { line: usize, token: String },
    /// Line has the wrong number of fields for its keyword.
    BadArity { line: usize, keyword: &'static str },
    /// A coordinate or index failed to parse.
    BadNumber { line: usize, token: String },
    /// A `link` endpoint is out of range or a self-loop.
    BadEndpoint {
        line: usize,
        index: usize,
        nodes: usize,
    },
    /// The same undirected link appears twice.
    DuplicateLink { line: usize, a: usize, b: usize },
    /// Two `node` lines share a name.
    DuplicateNode { line: usize, name: String },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::MissingName { line } => {
                write!(
                    f,
                    "line {line}: expected `name <slug>` before other records"
                )
            }
            CorpusError::BadSlug { line, slug } => {
                write!(f, "line {line}: slug {slug:?} must match [a-z0-9-]+")
            }
            CorpusError::UnknownKeyword { line, token } => {
                write!(f, "line {line}: unknown keyword {token:?}")
            }
            CorpusError::BadArity { line, keyword } => {
                write!(f, "line {line}: wrong number of fields for `{keyword}`")
            }
            CorpusError::BadNumber { line, token } => {
                write!(f, "line {line}: {token:?} is not a number")
            }
            CorpusError::BadEndpoint { line, index, nodes } => {
                write!(f, "line {line}: endpoint {index} invalid for {nodes} nodes")
            }
            CorpusError::DuplicateLink { line, a, b } => {
                write!(f, "line {line}: duplicate link {a}-{b}")
            }
            CorpusError::DuplicateNode { line, name } => {
                write!(f, "line {line}: duplicate node name {name:?}")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// A parsed corpus file: leading comments, the declared slug, and the
/// topology itself. Enough state to [`emit`](CorpusFile::emit) the
/// canonical bytes back.
#[derive(Clone, Debug)]
pub struct CorpusFile {
    /// Top-of-file comment lines, without the `# ` prefix.
    pub comments: Vec<String>,
    /// The slug declared by the `name` line.
    pub name: String,
    pub topology: Topology,
}

impl CorpusFile {
    /// Canonical serialization: comments, `name`, `node` lines in id
    /// order, `link` lines in insertion order, trailing newline.
    /// `emit(parse(f)) == f` holds for every checked-in file.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for c in &self.comments {
            out.push_str("# ");
            out.push_str(c);
            out.push('\n');
        }
        out.push_str("name ");
        out.push_str(&self.name);
        out.push('\n');
        for (_, info) in self.topology.nodes() {
            let (lon, lat) = info.pos;
            out.push_str(&format!("node {} {} {}\n", info.name, lon, lat));
        }
        for e in self.topology.edges() {
            out.push_str(&format!("link {} {}\n", e.a, e.b));
        }
        out
    }
}

/// Parse one `.topo` file.
pub fn parse(text: &str) -> Result<CorpusFile, CorpusError> {
    let mut comments = Vec::new();
    let mut name: Option<String> = None;
    let mut topo = Topology::new();
    let mut last = 0;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        last = line;
        if raw.trim().is_empty() {
            continue;
        }
        if let Some(rest) = raw.strip_prefix('#') {
            comments.push(rest.strip_prefix(' ').unwrap_or(rest).to_string());
            continue;
        }
        let fields: Vec<&str> = raw.split_whitespace().collect();
        match fields[0] {
            "name" => {
                let [_, slug] = fields[..] else {
                    return Err(CorpusError::BadArity {
                        line,
                        keyword: "name",
                    });
                };
                if slug.is_empty()
                    || !slug
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                {
                    return Err(CorpusError::BadSlug {
                        line,
                        slug: slug.to_string(),
                    });
                }
                name = Some(slug.to_string());
            }
            "node" => {
                if name.is_none() {
                    return Err(CorpusError::MissingName { line });
                }
                let [_, node_name, lon, lat] = fields[..] else {
                    return Err(CorpusError::BadArity {
                        line,
                        keyword: "node",
                    });
                };
                let coord = |tok: &str| {
                    tok.parse::<f64>().map_err(|_| CorpusError::BadNumber {
                        line,
                        token: tok.to_string(),
                    })
                };
                if topo.nodes().any(|(_, info)| info.name == node_name) {
                    return Err(CorpusError::DuplicateNode {
                        line,
                        name: node_name.to_string(),
                    });
                }
                topo.add_node(node_name, (coord(lon)?, coord(lat)?));
            }
            "link" => {
                if name.is_none() {
                    return Err(CorpusError::MissingName { line });
                }
                let [_, a, b] = fields[..] else {
                    return Err(CorpusError::BadArity {
                        line,
                        keyword: "link",
                    });
                };
                let index = |tok: &str| {
                    tok.parse::<usize>().map_err(|_| CorpusError::BadNumber {
                        line,
                        token: tok.to_string(),
                    })
                };
                let (a, b) = (index(a)?, index(b)?);
                let nodes = topo.node_count();
                for end in [a, b] {
                    if end >= nodes {
                        return Err(CorpusError::BadEndpoint {
                            line,
                            index: end,
                            nodes,
                        });
                    }
                }
                if a == b {
                    return Err(CorpusError::BadEndpoint {
                        line,
                        index: a,
                        nodes,
                    });
                }
                if topo.has_edge(a, b) {
                    return Err(CorpusError::DuplicateLink { line, a, b });
                }
                topo.add_edge(a, b);
            }
            other => {
                return Err(CorpusError::UnknownKeyword {
                    line,
                    token: other.to_string(),
                });
            }
        }
    }
    let name = name.ok_or(CorpusError::MissingName { line: last + 1 })?;
    Ok(CorpusFile {
        comments,
        name,
        topology: topo,
    })
}

/// Slugs of every checked-in network, sorted.
pub fn names() -> Vec<&'static str> {
    CORPUS.iter().map(|&(n, _)| n).collect()
}

/// Raw file bytes for `name`, if checked in.
pub fn raw(name: &str) -> Option<&'static str> {
    CORPUS
        .binary_search_by(|&(n, _)| n.cmp(name))
        .ok()
        .map(|i| CORPUS[i].1)
}

/// Build the named corpus topology. Checked-in files are verified by
/// the test suite, so a present name always parses.
pub fn load(name: &str) -> Option<Topology> {
    raw(name).map(|text| {
        parse(text)
            .unwrap_or_else(|e| panic!("checked-in corpus file {name:?} invalid: {e}"))
            .topology
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_large_sorted_and_connected() {
        assert!(CORPUS.len() >= 40, "corpus has {} files", CORPUS.len());
        for w in CORPUS.windows(2) {
            assert!(w[0].0 < w[1].0, "corpus not sorted at {:?}", w[1].0);
        }
        for &(name, text) in CORPUS {
            let file = parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(file.name, name, "slug must match file name");
            assert!(file.topology.is_connected(), "{name} is disconnected");
            assert!(file.topology.node_count() >= 5, "{name} too small");
        }
    }

    #[test]
    fn every_file_round_trips_byte_exact() {
        for &(name, text) in CORPUS {
            let file = parse(text).unwrap();
            assert_eq!(file.emit(), text, "{name} does not round-trip");
        }
    }

    #[test]
    fn load_and_names_agree() {
        assert_eq!(names().len(), CORPUS.len());
        for name in names() {
            assert!(load(name).is_some());
        }
        assert!(load("atlantis").is_none());
        assert_eq!(raw("abilene").map(|t| t.is_empty()), Some(false));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        let missing = parse("node A 0 0\n").unwrap_err();
        assert!(matches!(missing, CorpusError::MissingName { line: 1 }));

        let bad_slug = parse("name Big_Net\n").unwrap_err();
        assert!(matches!(bad_slug, CorpusError::BadSlug { line: 1, .. }));

        let keyword = parse("name x\nedge 0 1\n").unwrap_err();
        assert_eq!(
            keyword,
            CorpusError::UnknownKeyword {
                line: 2,
                token: "edge".into()
            }
        );

        let arity = parse("name x\nnode A 0\n").unwrap_err();
        assert!(matches!(
            arity,
            CorpusError::BadArity {
                line: 2,
                keyword: "node"
            }
        ));

        let number = parse("name x\nnode A east 0\n").unwrap_err();
        assert_eq!(
            number,
            CorpusError::BadNumber {
                line: 2,
                token: "east".into()
            }
        );

        let range = parse("name x\nnode A 0 0\nlink 0 3\n").unwrap_err();
        assert_eq!(
            range,
            CorpusError::BadEndpoint {
                line: 3,
                index: 3,
                nodes: 1
            }
        );

        let dup = parse("name x\nnode A 0 0\nnode B 1 0\nlink 0 1\nlink 1 0\n").unwrap_err();
        assert_eq!(
            dup,
            CorpusError::DuplicateLink {
                line: 5,
                a: 1,
                b: 0
            }
        );

        let dup_node = parse("name x\nnode A 0 0\nnode A 1 0\n").unwrap_err();
        assert!(matches!(
            dup_node,
            CorpusError::DuplicateNode { line: 3, .. }
        ));

        let empty = parse("# just a comment\n").unwrap_err();
        assert!(matches!(empty, CorpusError::MissingName { .. }));
    }

    #[test]
    fn positions_round_trip_through_f64_display() {
        // The emitter prints positions with `{}`; the authoring rule is
        // that every checked-in coordinate survives parse → Display
        // unchanged (≤2 decimals keeps this trivially true).
        for &(name, text) in CORPUS {
            for line in text.lines().filter(|l| l.starts_with("node ")) {
                let f: Vec<&str> = line.split_whitespace().collect();
                for tok in &f[2..] {
                    let v: f64 = tok.parse().unwrap();
                    assert_eq!(&format!("{v}"), tok, "{name}: {tok}");
                }
            }
        }
    }
}
