//! Deterministic topology generators.
//!
//! Fig. 3 of the paper sweeps **ring topologies with different numbers
//! of switches**; the ablations additionally use lines, stars, grids,
//! full meshes and two random-graph families. Random generators take an
//! explicit RNG so experiments stay reproducible.

use crate::graph::Topology;
use rand::Rng;

/// Ring of `n ≥ 3` nodes (the Fig. 3 workload).
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 nodes, got {n}");
    let mut t = Topology::new();
    for i in 0..n {
        let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        t.add_node(format!("s{i}"), (theta.cos(), theta.sin()));
    }
    for i in 0..n {
        t.add_edge(i, (i + 1) % n);
    }
    t
}

/// Path graph of `n ≥ 2` nodes.
pub fn line(n: usize) -> Topology {
    assert!(n >= 2, "a line needs at least 2 nodes, got {n}");
    let mut t = Topology::new();
    for i in 0..n {
        t.add_node(format!("s{i}"), (i as f64, 0.0));
    }
    for i in 0..n - 1 {
        t.add_edge(i, i + 1);
    }
    t
}

/// Star: node 0 is the hub, nodes `1..n` are leaves.
pub fn star(n: usize) -> Topology {
    assert!(n >= 2, "a star needs at least 2 nodes, got {n}");
    let mut t = Topology::new();
    t.add_node("hub", (0.0, 0.0));
    for i in 1..n {
        let theta = 2.0 * std::f64::consts::PI * i as f64 / (n - 1) as f64;
        t.add_node(format!("s{i}"), (theta.cos(), theta.sin()));
        t.add_edge(0, i);
    }
    t
}

/// `w × h` grid with 4-neighbour connectivity.
pub fn grid(w: usize, h: usize) -> Topology {
    assert!(w >= 1 && h >= 1, "grid dimensions must be positive");
    let mut t = Topology::new();
    for y in 0..h {
        for x in 0..w {
            t.add_node(format!("s{x}_{y}"), (x as f64, y as f64));
        }
    }
    let id = |x: usize, y: usize| y * w + x;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                t.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                t.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    t
}

/// Complete graph on `n` nodes.
pub fn full_mesh(n: usize) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new();
    for i in 0..n {
        let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        t.add_node(format!("s{i}"), (theta.cos(), theta.sin()));
    }
    for i in 0..n {
        for j in i + 1..n {
            t.add_edge(i, j);
        }
    }
    t
}

/// Three-tier fat-tree of radix `k` (k even, ≥ 2): `(k/2)²` core
/// switches and `k` pods of `k/2` aggregation + `k/2` edge switches —
/// `5k²/4` switches total, `k³/2` links. Aggregation switch `a` of a
/// pod uplinks to core group `a` (cores `a·k/2 .. (a+1)·k/2`); every
/// edge switch connects to all aggregation switches of its pod. This
/// is the full-bisection datacenter shape (Al-Fares et al.): k=8 is
/// the 80-switch corpus entry, k=16 already 320 switches.
pub fn fat_tree(k: usize) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree radix must be even, got {k}"
    );
    let half = k / 2;
    let mut t = Topology::new();
    // Cores first, then per-pod agg and edge layers; positions are an
    // abstract layered layout (x spreads the layer, y is the tier).
    let core: Vec<usize> = (0..half * half)
        .map(|i| t.add_node(format!("core{i}"), (i as f64, 0.0)))
        .collect();
    for p in 0..k {
        let agg: Vec<usize> = (0..half)
            .map(|a| t.add_node(format!("agg{p}_{a}"), ((p * half + a) as f64, 1.0)))
            .collect();
        let edge: Vec<usize> = (0..half)
            .map(|e| t.add_node(format!("edge{p}_{e}"), ((p * half + e) as f64, 2.0)))
            .collect();
        for (a, &agg_id) in agg.iter().enumerate() {
            for j in 0..half {
                t.add_edge(agg_id, core[a * half + j]);
            }
            for &edge_id in &edge {
                t.add_edge(agg_id, edge_id);
            }
        }
    }
    t
}

/// Two-tier leaf–spine (Clos) fabric: every leaf connects to every
/// spine, plus `hosts_per_leaf` stub nodes per leaf standing in for
/// the rack below it. `spines + leaves·(1 + hosts_per_leaf)` nodes,
/// `spines·leaves + leaves·hosts_per_leaf` links.
pub fn leaf_spine(spines: usize, leaves: usize, hosts_per_leaf: usize) -> Topology {
    assert!(spines >= 1, "need at least one spine");
    assert!(leaves >= 2, "need at least two leaves, got {leaves}");
    let mut t = Topology::new();
    let spine: Vec<usize> = (0..spines)
        .map(|s| t.add_node(format!("spine{s}"), (s as f64, 0.0)))
        .collect();
    for l in 0..leaves {
        let leaf = t.add_node(format!("leaf{l}"), (l as f64, 1.0));
        for &s in &spine {
            t.add_edge(leaf, s);
        }
        for h in 0..hosts_per_leaf {
            let host = t.add_node(format!("h{l}_{h}"), ((l * hosts_per_leaf + h) as f64, 2.0));
            t.add_edge(leaf, host);
        }
    }
    t
}

/// Erdős–Rényi G(n, p), re-sampled until connected (up to 1000 tries).
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Topology {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&p));
    for _ in 0..1000 {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(format!("s{i}"), (rng.gen::<f64>(), rng.gen::<f64>()));
        }
        for i in 0..n {
            for j in i + 1..n {
                if rng.gen_bool(p) {
                    t.add_edge(i, j);
                }
            }
        }
        if t.is_connected() {
            return t;
        }
    }
    panic!("erdos_renyi({n}, {p}): could not draw a connected graph in 1000 tries");
}

/// Waxman random graph on the unit square: edge probability
/// `alpha * exp(-d / (beta * L))` with `L = sqrt(2)`. Re-sampled until
/// connected.
pub fn waxman<R: Rng>(n: usize, alpha: f64, beta: f64, rng: &mut R) -> Topology {
    assert!(n >= 2);
    let l = std::f64::consts::SQRT_2;
    for _ in 0..1000 {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(format!("s{i}"), (rng.gen::<f64>(), rng.gen::<f64>()));
        }
        for i in 0..n {
            for j in i + 1..n {
                let d = t.euclidean(i, j);
                if rng.gen_bool((alpha * (-d / (beta * l)).exp()).clamp(0.0, 1.0)) {
                    t.add_edge(i, j);
                }
            }
        }
        if t.is_connected() {
            return t;
        }
    }
    panic!("waxman({n}): could not draw a connected graph in 1000 tries");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ring_structure() {
        for n in [3, 4, 8, 28] {
            let t = ring(n);
            assert_eq!(t.node_count(), n);
            assert_eq!(t.edge_count(), n);
            assert!(t.is_connected());
            for i in 0..n {
                assert_eq!(t.degree(i), 2, "ring node degree");
            }
            assert_eq!(t.diameter(), Some(n / 2));
        }
    }

    #[test]
    fn line_structure() {
        let t = line(5);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(2), 2);
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn star_structure() {
        let t = star(9);
        assert_eq!(t.edge_count(), 8);
        assert_eq!(t.degree(0), 8);
        assert_eq!(t.diameter(), Some(2));
    }

    #[test]
    fn grid_structure() {
        let t = grid(4, 3);
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.edge_count(), 4 * 2 + 3 * 3); // 17: horizontal 3*3, vertical 4*2
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(3 + 2));
    }

    #[test]
    fn full_mesh_structure() {
        let t = full_mesh(6);
        assert_eq!(t.edge_count(), 15);
        assert_eq!(t.diameter(), Some(1));
    }

    #[test]
    fn fat_tree_structure() {
        // Switch/link counts are closed-form functions of the radix:
        // 5k²/4 switches, k³/2 links, diameter 4 between distinct
        // pods' edge switches, and uniform per-tier degrees.
        for k in [2usize, 4, 8, 16] {
            let half = k / 2;
            let t = fat_tree(k);
            assert_eq!(t.node_count(), 5 * k * k / 4, "k={k} switch count");
            assert_eq!(t.edge_count(), k * k * k / 2, "k={k} link count");
            assert!(t.is_connected());
            // Cores see one agg per pod; aggs see k/2 cores + k/2
            // edges; edge switches see their pod's k/2 aggs (their
            // other k/2 ports face hosts, which this generator omits).
            for c in 0..half * half {
                assert_eq!(t.degree(c), k, "core degree at k={k}");
            }
            for p in 0..k {
                let pod = half * half + p * k;
                for a in pod..pod + half {
                    assert_eq!(t.degree(a), k, "agg degree at k={k}");
                }
                for e in pod + half..pod + k {
                    assert_eq!(t.degree(e), half, "edge degree at k={k}");
                }
            }
            if k >= 4 {
                assert_eq!(t.diameter(), Some(4), "k={k} diameter");
            }
        }
        // The corpus's headline instance: fat-tree-k8 is 80 switches.
        assert_eq!(fat_tree(8).node_count(), 80);
    }

    #[test]
    fn leaf_spine_structure() {
        let (s, l, h) = (4, 8, 3);
        let t = leaf_spine(s, l, h);
        assert_eq!(t.node_count(), s + l * (1 + h));
        assert_eq!(t.edge_count(), s * l + l * h);
        assert!(t.is_connected());
        for spine in 0..s {
            assert_eq!(t.degree(spine), l, "spine sees every leaf");
        }
        // Host-to-host across racks: host → leaf → spine → leaf → host.
        assert_eq!(t.diameter(), Some(4));
        // Hostless fabrics are valid (pure switch sweeps).
        let bare = leaf_spine(2, 4, 0);
        assert_eq!(bare.node_count(), 6);
        assert_eq!(bare.diameter(), Some(2));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn fat_tree_odd_radix_panics() {
        fat_tree(5);
    }

    #[test]
    fn erdos_renyi_connected_and_deterministic() {
        let a = erdos_renyi(20, 0.25, &mut StdRng::seed_from_u64(1));
        let b = erdos_renyi(20, 0.25, &mut StdRng::seed_from_u64(1));
        assert!(a.is_connected());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn waxman_connected() {
        let t = waxman(20, 0.9, 0.4, &mut StdRng::seed_from_u64(2));
        assert!(t.is_connected());
        assert!(t.edge_count() >= 19);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small_panics() {
        ring(2);
    }
}
