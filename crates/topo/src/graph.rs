//! Undirected graph with named, positioned nodes.

use std::collections::VecDeque;

/// Index of a node within a [`Topology`].
pub type NodeId = usize;

/// A node: a future OpenFlow switch.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeInfo {
    /// Human-readable name (city name for pan-EU, `"s<i>"` otherwise).
    pub name: String,
    /// Layout position (longitude/latitude for pan-EU, abstract
    /// coordinates for generated graphs). Used by the GUI and for
    /// distance-derived latencies.
    pub pos: (f64, f64),
}

/// An undirected edge between two nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    pub a: NodeId,
    pub b: NodeId,
}

impl Edge {
    pub fn new(a: NodeId, b: NodeId) -> Edge {
        Edge { a, b }
    }

    /// The endpoint that is not `n` (panics if `n` is not an endpoint).
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("node {n} not on edge {self:?}")
        }
    }
}

/// An undirected network topology.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    edges: Vec<Edge>,
    /// Adjacency index, maintained by `add_edge`: `adj[n]` lists n's
    /// neighbours in edge-insertion order. Keeps `has_edge` (and
    /// therefore graph construction) and BFS linear for the corpus's
    /// thousand-switch fat-trees, where the edge-list scan was O(E)
    /// per query.
    adj: Vec<Vec<NodeId>>,
}

impl Topology {
    pub fn new() -> Topology {
        Topology::default()
    }

    pub fn add_node(&mut self, name: impl Into<String>, pos: (f64, f64)) -> NodeId {
        self.nodes.push(NodeInfo {
            name: name.into(),
            pos,
        });
        self.adj.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Add an undirected edge. Self-loops are rejected; parallel edges
    /// are allowed by the type but rejected here because OpenFlow port
    /// mapping in the experiments assumes simple graphs.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(a != b, "self-loop at node {a}");
        assert!(
            a < self.nodes.len() && b < self.nodes.len(),
            "edge endpoint out of range"
        );
        assert!(
            !self.has_edge(a, b),
            "duplicate edge {a}-{b} (simple graphs only)"
        );
        self.edges.push(Edge::new(a, b));
        self.adj[a].push(b);
        self.adj[b].push(a);
    }

    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        let (probe, target) = if self.adj[a].len() <= self.adj[b].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[probe].contains(&target)
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn node(&self, id: NodeId) -> &NodeInfo {
        &self.nodes[id]
    }

    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeInfo)> {
        self.nodes.iter().enumerate()
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbours of `n` in insertion order.
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adj[n]
    }

    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n].len()
    }

    /// Euclidean distance between two node positions (degrees → km is
    /// the caller's concern; pan-EU uses [`Topology::geo_distance_km`]).
    pub fn euclidean(&self, a: NodeId, b: NodeId) -> f64 {
        let (ax, ay) = self.nodes[a].pos;
        let (bx, by) = self.nodes[b].pos;
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Great-circle distance in km when positions are (lon, lat) in
    /// degrees (haversine, Earth radius 6371 km).
    pub fn geo_distance_km(&self, a: NodeId, b: NodeId) -> f64 {
        let (lon1, lat1) = self.nodes[a].pos;
        let (lon2, lat2) = self.nodes[b].pos;
        let (la1, la2) = (lat1.to_radians(), lat2.to_radians());
        let dlat = (lat2 - lat1).to_radians();
        let dlon = (lon2 - lon1).to_radians();
        let h = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * 6371.0 * h.sqrt().asin()
    }

    /// Hop distances from `src` to every node (`usize::MAX` if
    /// unreachable).
    pub fn bfs_distances(&self, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.nodes.len()];
        dist[src] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for &v in self.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// True when every node can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }

    /// Longest shortest path in hops (`None` for disconnected graphs).
    pub fn diameter(&self) -> Option<usize> {
        let mut best = 0;
        for n in 0..self.nodes.len() {
            let d = self.bfs_distances(n);
            let m = *d.iter().max()?;
            if m == usize::MAX {
                return None;
            }
            best = best.max(m);
        }
        Some(best)
    }

    /// Pair of nodes realizing the diameter (useful for placing the
    /// demo's video server and remote client as far apart as possible).
    pub fn farthest_pair(&self) -> Option<(NodeId, NodeId)> {
        let mut best = (0usize, (0, 0));
        for n in 0..self.nodes.len() {
            let d = self.bfs_distances(n);
            for (m, &dm) in d.iter().enumerate() {
                if dm != usize::MAX && dm > best.0 {
                    best = (dm, (n, m));
                }
            }
        }
        if self.nodes.is_empty() {
            None
        } else {
            Some(best.1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut t = Topology::new();
        let a = t.add_node("a", (0.0, 0.0));
        let b = t.add_node("b", (1.0, 0.0));
        let c = t.add_node("c", (0.0, 1.0));
        t.add_edge(a, b);
        t.add_edge(b, c);
        t.add_edge(c, a);
        t
    }

    #[test]
    fn counts_and_degrees() {
        let t = triangle();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.degree(0), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut t = Topology::new();
        let a = t.add_node("a", (0.0, 0.0));
        t.add_edge(a, a);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_parallel_edge() {
        let mut t = Topology::new();
        let a = t.add_node("a", (0.0, 0.0));
        let b = t.add_node("b", (0.0, 0.0));
        t.add_edge(a, b);
        t.add_edge(b, a);
    }

    #[test]
    fn bfs_distances_line() {
        let mut t = Topology::new();
        for i in 0..4 {
            t.add_node(format!("n{i}"), (i as f64, 0.0));
        }
        t.add_edge(0, 1);
        t.add_edge(1, 2);
        t.add_edge(2, 3);
        assert_eq!(t.bfs_distances(0), vec![0, 1, 2, 3]);
        assert_eq!(t.diameter(), Some(3));
        let (a, b) = t.farthest_pair().unwrap();
        assert_eq!(t.bfs_distances(a)[b], 3);
    }

    #[test]
    fn connectivity_detection() {
        let mut t = triangle();
        assert!(t.is_connected());
        t.add_node("island", (9.0, 9.0));
        assert!(!t.is_connected());
        assert_eq!(t.diameter(), None);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(3, 7);
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    fn geo_distance_plausible() {
        let mut t = Topology::new();
        // London and Paris: ~343 km apart.
        let lon = t.add_node("London", (-0.13, 51.51));
        let par = t.add_node("Paris", (2.35, 48.86));
        let d = t.geo_distance_km(lon, par);
        assert!((300.0..400.0).contains(&d), "got {d} km");
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Topology::new().is_connected());
    }
}
