//! # rf-topo — network topologies for the reproduction
//!
//! The paper evaluates on **ring topologies of varying size** (Fig. 3)
//! and demonstrates on an **emulated pan-European topology of 28
//! nodes** (Section 3, citing Maesschalck et al., *Pan-European optical
//! transport networks*, 2003). This crate provides:
//!
//! * a minimal undirected multigraph ([`Topology`]) with the queries
//!   the experiments need (connectivity, degrees, BFS distances,
//!   diameter);
//! * deterministic generators ([`generators`]): ring, line, star, grid,
//!   full mesh, fat-tree and leaf–spine fabrics, Erdős–Rényi and
//!   Waxman random graphs;
//! * the 28-node / 41-link pan-European reference network
//!   ([`pan_european::pan_european`]) with city names and geographic
//!   coordinates, from which per-link propagation latencies are derived
//!   (fiber at ~200 km/ms);
//! * a checked-in corpus of classic WAN topologies ([`corpus`]) and a
//!   typed, name-round-tripping specification API ([`spec::TopoSpec`])
//!   that reaches every family above.

pub mod corpus;
pub mod generators;
pub mod graph;
pub mod pan_european;
pub mod registry;
pub mod spec;

pub use generators::{
    erdos_renyi, fat_tree, full_mesh, grid, leaf_spine, line, ring, star, waxman,
};
pub use graph::{Edge, NodeId, NodeInfo, Topology};
pub use pan_european::pan_european;
#[allow(deprecated)]
#[deprecated(note = "use registry::try_resolve or name.parse::<TopoSpec>()?.build()")]
pub use registry::resolve as resolve_topology;
pub use spec::{SeededKind, TopoParseError, TopoSpec};
