//! The 28-node pan-European reference network.
//!
//! The paper's demonstration (Section 3) streams video across "a pan
//! European topology [5] consisting of 28 nodes", citing Maesschalck et
//! al., *Pan-European optical transport networks: an availability-based
//! comparison* (2003) — the COST 266 reference networks. We encode a
//! 28-city / 41-link basic-topology variant with real coordinates;
//! minor edge-list differences from the (print-only) original do not
//! affect the reproduction, which only relies on "28 nodes, ~41 links,
//! connected, European-scale latencies". This substitution is recorded
//! in DESIGN.md.

use crate::graph::Topology;

/// City list: `(name, longitude, latitude)`.
pub const CITIES: [(&str, f64, f64); 28] = [
    ("Amsterdam", 4.90, 52.37),
    ("Athens", 23.73, 37.98),
    ("Barcelona", 2.17, 41.39),
    ("Belgrade", 20.46, 44.80),
    ("Berlin", 13.40, 52.52),
    ("Bordeaux", -0.58, 44.84),
    ("Brussels", 4.35, 50.85),
    ("Budapest", 19.04, 47.50),
    ("Copenhagen", 12.57, 55.69),
    ("Dublin", -6.26, 53.35),
    ("Dusseldorf", 6.78, 51.23),
    ("Frankfurt", 8.68, 50.11),
    ("Glasgow", -4.25, 55.86),
    ("Hamburg", 9.99, 53.55),
    ("Krakow", 19.94, 50.06),
    ("London", -0.13, 51.51),
    ("Lyon", 4.84, 45.76),
    ("Madrid", -3.70, 40.42),
    ("Milan", 9.19, 45.46),
    ("Munich", 11.58, 48.14),
    ("Oslo", 10.75, 59.91),
    ("Paris", 2.35, 48.86),
    ("Prague", 14.44, 50.08),
    ("Rome", 12.50, 41.90),
    ("Stockholm", 18.07, 59.33),
    ("Strasbourg", 7.75, 48.58),
    ("Vienna", 16.37, 48.21),
    ("Zurich", 8.54, 47.37),
];

/// The 41 links, by indices into [`CITIES`].
pub const LINKS: [(usize, usize); 41] = [
    (0, 6),   // Amsterdam–Brussels
    (0, 12),  // Amsterdam–Glasgow
    (0, 13),  // Amsterdam–Hamburg
    (0, 15),  // Amsterdam–London
    (1, 3),   // Athens–Belgrade
    (1, 23),  // Athens–Rome
    (1, 18),  // Athens–Milan
    (2, 17),  // Barcelona–Madrid
    (2, 16),  // Barcelona–Lyon
    (3, 7),   // Belgrade–Budapest
    (3, 26),  // Belgrade–Vienna
    (4, 8),   // Berlin–Copenhagen
    (4, 13),  // Berlin–Hamburg
    (4, 19),  // Berlin–Munich
    (4, 22),  // Berlin–Prague
    (5, 17),  // Bordeaux–Madrid
    (5, 21),  // Bordeaux–Paris
    (6, 10),  // Brussels–Dusseldorf
    (6, 21),  // Brussels–Paris
    (7, 14),  // Budapest–Krakow
    (7, 22),  // Budapest–Prague
    (8, 20),  // Copenhagen–Oslo
    (8, 24),  // Copenhagen–Stockholm
    (9, 12),  // Dublin–Glasgow
    (9, 15),  // Dublin–London
    (10, 11), // Dusseldorf–Frankfurt
    (11, 13), // Frankfurt–Hamburg
    (11, 19), // Frankfurt–Munich
    (11, 25), // Frankfurt–Strasbourg
    (14, 26), // Krakow–Vienna
    (15, 21), // London–Paris
    (16, 21), // Lyon–Paris
    (16, 27), // Lyon–Zurich
    (18, 19), // Milan–Munich
    (18, 23), // Milan–Rome
    (18, 27), // Milan–Zurich
    (19, 26), // Munich–Vienna
    (20, 24), // Oslo–Stockholm
    (21, 25), // Paris–Strasbourg
    (22, 26), // Prague–Vienna
    (25, 27), // Strasbourg–Zurich
];

/// Build the pan-European topology.
pub fn pan_european() -> Topology {
    let mut t = Topology::new();
    for (name, lon, lat) in CITIES {
        t.add_node(name, (lon, lat));
    }
    for (a, b) in LINKS {
        t.add_edge(a, b);
    }
    t
}

/// Propagation latency for an edge, assuming fiber at ~200 km per
/// millisecond and a 1.4 routing detour factor over great-circle
/// distance (standard for terrestrial fiber planning).
pub fn link_latency_us(t: &Topology, a: usize, b: usize) -> u64 {
    let km = t.geo_distance_km(a, b) * 1.4;
    (km / 200.0 * 1000.0).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_28_nodes_and_41_links() {
        let t = pan_european();
        assert_eq!(t.node_count(), 28);
        assert_eq!(t.edge_count(), 41);
    }

    #[test]
    fn is_connected_with_modest_diameter() {
        let t = pan_european();
        assert!(t.is_connected());
        let d = t.diameter().unwrap();
        assert!((4..=9).contains(&d), "diameter {d} out of expected band");
    }

    #[test]
    fn degrees_are_realistic() {
        let t = pan_european();
        for (id, info) in t.nodes() {
            let d = t.degree(id);
            assert!((2..=5).contains(&d), "{} has degree {d}", info.name);
        }
        // Handshake lemma.
        let sum: usize = (0..t.node_count()).map(|n| t.degree(n)).sum();
        assert_eq!(sum, 2 * t.edge_count());
    }

    #[test]
    fn city_names_unique() {
        let t = pan_european();
        let mut names: Vec<&str> = t.nodes().map(|(_, i)| i.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 28);
    }

    #[test]
    fn latencies_in_european_band() {
        let t = pan_european();
        for e in t.edges() {
            let us = link_latency_us(&t, e.a, e.b);
            // 100 km .. 3000 km of fiber → 0.5 .. 21 ms one-way.
            assert!(
                (500..=21_000).contains(&us),
                "{}–{}: {us} µs",
                t.node(e.a).name,
                t.node(e.b).name
            );
        }
    }

    #[test]
    fn london_paris_edge_exists_and_short() {
        let t = pan_european();
        let london = t.nodes().find(|(_, i)| i.name == "London").unwrap().0;
        let paris = t.nodes().find(|(_, i)| i.name == "Paris").unwrap().0;
        assert!(t.has_edge(london, paris));
        let us = link_latency_us(&t, london, paris);
        assert!((1_000..=4_000).contains(&us), "{us} µs");
    }

    #[test]
    fn farthest_pair_spans_continent() {
        let t = pan_european();
        let (a, b) = t.farthest_pair().unwrap();
        let hops = t.bfs_distances(a)[b];
        assert!(hops >= 4, "expected a long path, got {hops} hops");
    }
}
