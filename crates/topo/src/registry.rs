//! Named topology resolution for sweep grids.
//!
//! A scenario matrix is keyed by strings so its report diffs cleanly
//! and its axes can come from a CLI flag or a CI config. This module
//! turns those names back into [`Topology`] values:
//!
//! * `ring-N`, `line-N`, `star-N`, `mesh-N` — the deterministic
//!   generator families, parameterized by node count;
//! * `grid-WxH` — the W × H grid;
//! * `pan-european` — the 28-node reference network.
//!
//! Random families (Erdős–Rényi, Waxman) are deliberately absent: they
//! need an RNG and would tie a topology name to a seed. Sweeps that
//! want them pass a custom builder closure instead.

use crate::generators::{full_mesh, grid, line, ring, star};
use crate::graph::Topology;
use crate::pan_european::pan_european;

/// Resolve a topology name; `None` if the name is not recognized or
/// its parameters are out of range for the generator.
pub fn resolve(name: &str) -> Option<Topology> {
    if name == "pan-european" {
        return Some(pan_european());
    }
    let (family, param) = name.split_once('-')?;
    match family {
        "ring" => Some(ring(checked(param, 3)?)),
        "line" => Some(line(checked(param, 2)?)),
        "star" => Some(star(checked(param, 2)?)),
        "mesh" => Some(full_mesh(checked(param, 2)?)),
        "grid" => {
            let (w, h) = param.split_once('x')?;
            Some(grid(checked(w, 1)?, checked(h, 1)?))
        }
        _ => None,
    }
}

fn checked(s: &str, min: usize) -> Option<usize> {
    let n: usize = s.parse().ok()?;
    // Cap well above any realistic sweep so a typo like `ring-4000000`
    // fails fast instead of allocating a city-sized graph.
    (n >= min && n <= 10_000).then_some(n)
}

/// The names a generic sweep CLI offers, smallest instances first.
pub fn standard_names() -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for n in [4usize, 8, 16, 28] {
        names.push(format!("ring-{n}"));
    }
    names.push("line-8".into());
    names.push("star-8".into());
    names.push("grid-4x4".into());
    names.push("pan-european".into());
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_every_family() {
        assert_eq!(resolve("ring-8").unwrap().node_count(), 8);
        assert_eq!(resolve("line-5").unwrap().node_count(), 5);
        assert_eq!(resolve("star-9").unwrap().node_count(), 9);
        assert_eq!(resolve("mesh-4").unwrap().edge_count(), 6);
        let g = resolve("grid-3x2").unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(resolve("pan-european").unwrap().node_count(), 28);
    }

    #[test]
    fn rejects_unknown_and_out_of_range() {
        assert!(resolve("torus-4").is_none());
        assert!(resolve("ring-2").is_none()); // generator needs >= 3
        assert!(resolve("ring-x").is_none());
        assert!(resolve("ring-4000000").is_none());
        assert!(resolve("grid-3").is_none()); // missing WxH
        assert!(resolve("ring").is_none());
    }

    #[test]
    fn standard_names_all_resolve() {
        for name in standard_names() {
            assert!(resolve(&name).is_some(), "{name} must resolve");
        }
    }
}
