//! Named topology resolution for sweep grids.
//!
//! A scenario matrix is keyed by strings so its report diffs cleanly
//! and its axes can come from a CLI flag or a CI config. The grammar
//! and the builders live in [`crate::spec::TopoSpec`]; this module is
//! the thin compatibility shim older call sites use:
//!
//! * [`try_resolve`] — parse + build with a typed error naming the
//!   offending token;
//! * [`resolve`] — the historical `Option` form.
//!
//! Every family is reachable by name, including the seeded random
//! graphs (`er-64-s7`, `waxman-64-s7`), the datacenter fabrics
//! (`fat-tree-k8`, `leaf-spine-4x16x2`) and the checked-in WAN corpus
//! (bare slugs like `abilene`, `geant`).

use crate::graph::Topology;
use crate::spec::{TopoParseError, TopoSpec};

/// Resolve a topology name, with a typed error describing what part
/// of the name was malformed or out of range.
pub fn try_resolve(name: &str) -> Result<Topology, TopoParseError> {
    name.parse::<TopoSpec>().map(|spec| spec.build())
}

/// Resolve a topology name; `None` if the name is not recognized or
/// its parameters are out of range.
///
/// Deprecated: the `Option` swallows *why* the name was rejected. Use
/// [`try_resolve`] for the typed error, or go through the spec layer
/// directly — `name.parse::<TopoSpec>()?.build()` — when you want the
/// parsed parameters too.
#[deprecated(note = "use try_resolve (typed error) or name.parse::<TopoSpec>()?.build()")]
pub fn resolve(name: &str) -> Option<Topology> {
    try_resolve(name).ok()
}

/// The names a generic sweep CLI offers, smallest instances first.
pub fn standard_names() -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for n in [4usize, 8, 16, 28] {
        names.push(format!("ring-{n}"));
    }
    names.push("line-8".into());
    names.push("star-8".into());
    names.push("grid-4x4".into());
    names.push("pan-european".into());
    names.push("abilene".into());
    names.push("fat-tree-k4".into());
    names.push("leaf-spine-4x8x0".into());
    names.push("er-24-s1".into());
    names.push("waxman-24-s1".into());
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_every_family() {
        assert_eq!(try_resolve("ring-8").unwrap().node_count(), 8);
        assert_eq!(try_resolve("line-5").unwrap().node_count(), 5);
        assert_eq!(try_resolve("star-9").unwrap().node_count(), 9);
        assert_eq!(try_resolve("mesh-4").unwrap().edge_count(), 6);
        let g = try_resolve("grid-3x2").unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(try_resolve("pan-european").unwrap().node_count(), 28);
        // Families the registry could not reach before the TopoSpec
        // redesign: datacenter fabrics, seeded randoms, the corpus.
        assert_eq!(try_resolve("fat-tree-k4").unwrap().node_count(), 20);
        assert_eq!(try_resolve("leaf-spine-2x4x1").unwrap().node_count(), 10);
        assert!(try_resolve("er-24-s1").unwrap().is_connected());
        assert!(try_resolve("waxman-24-s1").unwrap().is_connected());
        assert_eq!(try_resolve("abilene").unwrap().node_count(), 11);
    }

    #[test]
    fn rejects_unknown_and_out_of_range() {
        assert!(try_resolve("torus-4").is_err());
        assert!(try_resolve("ring-2").is_err()); // generator needs >= 3
        assert!(try_resolve("ring-x").is_err());
        assert!(try_resolve("ring-4000000").is_err());
        assert!(try_resolve("grid-3").is_err()); // missing WxH
        assert!(try_resolve("ring").is_err());
    }

    #[test]
    fn try_resolve_names_the_offending_token() {
        let e = try_resolve("grid-4x").unwrap_err();
        assert_eq!(e.name, "grid-4x");
        let e = try_resolve("ring-x").unwrap_err();
        assert_eq!(e.token, "x");
    }

    #[test]
    fn standard_names_all_resolve() {
        for name in standard_names() {
            assert!(try_resolve(&name).is_ok(), "{name} must resolve");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_option_shim_still_works() {
        assert_eq!(resolve("ring-8").unwrap().node_count(), 8);
        assert!(resolve("torus-4").is_none());
    }
}
