//! Typed topology specifications.
//!
//! [`TopoSpec`] is the typed face of every topology the sweeps can
//! build: the deterministic generator families, the datacenter
//! fabrics, the seeded random families and the checked-in WAN corpus.
//! `Display` and `FromStr` are a lossless round-trip, and the
//! `Display` form of the legacy families is byte-identical to the
//! names the stringly-typed registry always used (`ring-8`,
//! `grid-4x4`, `pan-european`, …) so matrix cell keys — and therefore
//! checked-in baseline reports — do not move.
//!
//! Naming scheme:
//!
//! | spec                                  | name                 |
//! |---------------------------------------|----------------------|
//! | `Ring(8)` / `Line`, `Star`, `Mesh`    | `ring-8`, …          |
//! | `Grid { w: 4, h: 4 }`                 | `grid-4x4`           |
//! | `PanEuropean`                         | `pan-european`       |
//! | `FatTree { k: 8 }`                    | `fat-tree-k8`        |
//! | `LeafSpine { 4, 16, 2 }`              | `leaf-spine-4x16x2`  |
//! | `Seeded { ErdosRenyi, 64, 7 }`        | `er-64-s7`           |
//! | `Seeded { Waxman, 64, 7 }`            | `waxman-64-s7`       |
//! | `Corpus("abilene")`                   | `abilene`            |

use crate::corpus;
use crate::generators::{
    erdos_renyi, fat_tree, full_mesh, grid, leaf_spine, line, ring, star, waxman,
};
use crate::graph::Topology;
use crate::pan_european::pan_european;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::str::FromStr;

/// Node-count ceiling for any parsed spec: a typo like `ring-4000000`
/// must fail fast instead of allocating a city-sized graph.
pub const MAX_NODES: usize = 10_000;

/// Seeded random families are resampled until connected, which is
/// quadratic work per try — cap them well below [`MAX_NODES`].
pub const MAX_SEEDED_NODES: usize = 512;

/// Which random-graph family a [`TopoSpec::Seeded`] draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SeededKind {
    /// Erdős–Rényi G(n, p) with p = 6/n (expected degree ≈ 6, kept
    /// rational so the draw is identical on every platform).
    ErdosRenyi,
    /// Waxman on the unit square with α = 0.9, β = 0.4.
    Waxman,
}

/// A typed, buildable topology description. See the module docs for
/// the name grammar; `Display`/`FromStr` round-trip losslessly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopoSpec {
    Ring(usize),
    Line(usize),
    Star(usize),
    Mesh(usize),
    Grid {
        w: usize,
        h: usize,
    },
    PanEuropean,
    FatTree {
        k: usize,
    },
    LeafSpine {
        spines: usize,
        leaves: usize,
        hosts_per_leaf: usize,
    },
    Seeded {
        kind: SeededKind,
        n: usize,
        seed: u64,
    },
    /// A checked-in WAN network, by slug. Holds the interned slug from
    /// the corpus table, so a constructed value is always loadable.
    Corpus(&'static str),
}

/// A topology name that failed to parse: the full name, the token
/// that broke it, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopoParseError {
    pub name: String,
    pub token: String,
    pub reason: &'static str,
}

impl fmt::Display for TopoParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid topology name {:?}: {} (at {:?})",
            self.name, self.reason, self.token
        )
    }
}

impl std::error::Error for TopoParseError {}

impl fmt::Display for TopoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopoSpec::Ring(n) => write!(f, "ring-{n}"),
            TopoSpec::Line(n) => write!(f, "line-{n}"),
            TopoSpec::Star(n) => write!(f, "star-{n}"),
            TopoSpec::Mesh(n) => write!(f, "mesh-{n}"),
            TopoSpec::Grid { w, h } => write!(f, "grid-{w}x{h}"),
            TopoSpec::PanEuropean => write!(f, "pan-european"),
            TopoSpec::FatTree { k } => write!(f, "fat-tree-k{k}"),
            TopoSpec::LeafSpine {
                spines,
                leaves,
                hosts_per_leaf,
            } => write!(f, "leaf-spine-{spines}x{leaves}x{hosts_per_leaf}"),
            TopoSpec::Seeded {
                kind: SeededKind::ErdosRenyi,
                n,
                seed,
            } => write!(f, "er-{n}-s{seed}"),
            TopoSpec::Seeded {
                kind: SeededKind::Waxman,
                n,
                seed,
            } => write!(f, "waxman-{n}-s{seed}"),
            TopoSpec::Corpus(name) => f.write_str(name),
        }
    }
}

impl FromStr for TopoSpec {
    type Err = TopoParseError;

    fn from_str(s: &str) -> Result<TopoSpec, TopoParseError> {
        let err = |reason: &'static str, token: &str| TopoParseError {
            name: s.to_string(),
            token: token.to_string(),
            reason,
        };
        let count = |tok: &str, min: usize| -> Result<usize, TopoParseError> {
            let n: usize = tok.parse().map_err(|_| err("expected a node count", tok))?;
            if n < min {
                return Err(err("parameter below the family minimum", tok));
            }
            if n > MAX_NODES {
                return Err(err("parameter above the 10000-node cap", tok));
            }
            Ok(n)
        };

        if s == "pan-european" {
            return Ok(TopoSpec::PanEuropean);
        }
        if let Some(rest) = s.strip_prefix("fat-tree-k") {
            let k: usize = rest.parse().map_err(|_| err("expected a radix", rest))?;
            if k < 2 || !k.is_multiple_of(2) {
                return Err(err("fat-tree radix must be even and ≥ 2", rest));
            }
            if 5 * k * k / 4 > MAX_NODES {
                return Err(err("fat-tree exceeds the 10000-node cap", rest));
            }
            return Ok(TopoSpec::FatTree { k });
        }
        if let Some(rest) = s.strip_prefix("leaf-spine-") {
            let parts: Vec<&str> = rest.split('x').collect();
            let [sp, lv, h] = parts[..] else {
                return Err(err("expected SPINESxLEAVESxHOSTS", rest));
            };
            let dim =
                |tok: &str, what: &'static str, min: usize| -> Result<usize, TopoParseError> {
                    let n: usize = tok.parse().map_err(|_| err(what, tok))?;
                    if n < min {
                        return Err(err(what, tok));
                    }
                    Ok(n)
                };
            let spines = dim(sp, "need at least 1 spine", 1)?;
            let leaves = dim(lv, "need at least 2 leaves", 2)?;
            let hosts_per_leaf = dim(h, "expected a host count", 0)?;
            if spines + leaves * (1 + hosts_per_leaf) > MAX_NODES {
                return Err(err("leaf-spine exceeds the 10000-node cap", rest));
            }
            return Ok(TopoSpec::LeafSpine {
                spines,
                leaves,
                hosts_per_leaf,
            });
        }
        for (prefix, kind) in [
            ("er-", SeededKind::ErdosRenyi),
            ("waxman-", SeededKind::Waxman),
        ] {
            let Some(rest) = s.strip_prefix(prefix) else {
                continue;
            };
            let Some((n, seed)) = rest.split_once("-s") else {
                return Err(err("expected N-sSEED", rest));
            };
            let n = count(n, 4)?;
            if n > MAX_SEEDED_NODES {
                return Err(err("seeded families cap at 512 nodes", rest));
            }
            let seed: u64 = seed.parse().map_err(|_| err("expected a seed", seed))?;
            return Ok(TopoSpec::Seeded { kind, n, seed });
        }
        for (prefix, build) in [
            ("ring-", TopoSpec::Ring as fn(usize) -> TopoSpec),
            ("line-", TopoSpec::Line),
            ("star-", TopoSpec::Star),
            ("mesh-", TopoSpec::Mesh),
        ] {
            let min = if prefix == "ring-" { 3 } else { 2 };
            if let Some(rest) = s.strip_prefix(prefix) {
                return Ok(build(count(rest, min)?));
            }
        }
        if let Some(rest) = s.strip_prefix("grid-") {
            let Some((w, h)) = rest.split_once('x') else {
                return Err(err("expected WxH", rest));
            };
            let (w, h) = (count(w, 1)?, count(h, 1)?);
            if w * h > MAX_NODES {
                return Err(err("grid exceeds the 10000-node cap", rest));
            }
            return Ok(TopoSpec::Grid { w, h });
        }
        // Bare names fall through to the corpus; intern the slug so a
        // parsed Corpus spec is loadable by construction.
        if let Ok(i) = corpus::names().binary_search(&s) {
            return Ok(TopoSpec::Corpus(corpus::names()[i]));
        }
        Err(err("unknown topology family or corpus slug", s))
    }
}

impl TopoSpec {
    /// Build the topology. Infallible: `FromStr` (and the corpus
    /// interning on `Corpus`) already validated every parameter.
    pub fn build(&self) -> Topology {
        match *self {
            TopoSpec::Ring(n) => ring(n),
            TopoSpec::Line(n) => line(n),
            TopoSpec::Star(n) => star(n),
            TopoSpec::Mesh(n) => full_mesh(n),
            TopoSpec::Grid { w, h } => grid(w, h),
            TopoSpec::PanEuropean => pan_european(),
            TopoSpec::FatTree { k } => fat_tree(k),
            TopoSpec::LeafSpine {
                spines,
                leaves,
                hosts_per_leaf,
            } => leaf_spine(spines, leaves, hosts_per_leaf),
            TopoSpec::Seeded { kind, n, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                match kind {
                    // p = 6/n keeps the expected degree constant as n
                    // grows and stays free of transcendental math, so
                    // the drawn graph is bit-identical everywhere.
                    SeededKind::ErdosRenyi => erdos_renyi(n, (6.0 / n as f64).min(1.0), &mut rng),
                    SeededKind::Waxman => waxman(n, 0.9, 0.4, &mut rng),
                }
            }
            TopoSpec::Corpus(name) => corpus::load(name).expect("Corpus specs hold interned slugs"),
        }
    }

    /// Node count without building the graph — exact for every
    /// variant (corpus files are counted from their raw bytes). Used
    /// by the sweep scheduler to order cells by expected cost.
    pub fn node_count_estimate(&self) -> usize {
        match *self {
            TopoSpec::Ring(n) | TopoSpec::Line(n) | TopoSpec::Star(n) | TopoSpec::Mesh(n) => n,
            TopoSpec::Grid { w, h } => w * h,
            TopoSpec::PanEuropean => 28,
            TopoSpec::FatTree { k } => 5 * k * k / 4,
            TopoSpec::LeafSpine {
                spines,
                leaves,
                hosts_per_leaf,
            } => spines + leaves * (1 + hosts_per_leaf),
            TopoSpec::Seeded { n, .. } => n,
            TopoSpec::Corpus(name) => corpus::raw(name)
                .expect("Corpus specs hold interned slugs")
                .lines()
                .filter(|l| l.starts_with("node "))
                .count(),
        }
    }

    /// Edge count without building the graph. Exact for every variant
    /// except the seeded random families, which report the expected
    /// value of their draw (Erdős–Rényi at p = 6/n, Waxman roughly
    /// likewise). Together with [`TopoSpec::node_count_estimate`] this
    /// drives the sweep scheduler's cost model — denser graphs flood
    /// more LSAs and carry more probe traffic per simulated second.
    pub fn edge_count_estimate(&self) -> usize {
        match *self {
            TopoSpec::Ring(n) => n,
            TopoSpec::Line(n) | TopoSpec::Star(n) => n - 1,
            TopoSpec::Mesh(n) => n * (n - 1) / 2,
            TopoSpec::Grid { w, h } => 2 * w * h - w - h,
            TopoSpec::PanEuropean => crate::pan_european::LINKS.len(),
            TopoSpec::FatTree { k } => k * k * k / 2,
            TopoSpec::LeafSpine {
                spines,
                leaves,
                hosts_per_leaf,
            } => leaves * (spines + hosts_per_leaf),
            // Expected degree ≈ 6 for both seeded families.
            TopoSpec::Seeded { n, .. } => 3 * n,
            TopoSpec::Corpus(name) => corpus::raw(name)
                .expect("Corpus specs hold interned slugs")
                .lines()
                .filter(|l| l.starts_with("link "))
                .count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(name: &str) -> TopoSpec {
        let spec: TopoSpec = name.parse().unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(spec.to_string(), name, "Display must invert FromStr");
        spec
    }

    #[test]
    fn display_fromstr_round_trip() {
        // Every variant, including each corpus slug.
        let mut names = vec![
            "ring-8".to_string(),
            "line-2".into(),
            "star-9".into(),
            "mesh-4".into(),
            "grid-4x4".into(),
            "pan-european".into(),
            "fat-tree-k8".into(),
            "leaf-spine-4x16x2".into(),
            "leaf-spine-2x4x0".into(),
            "er-64-s7".into(),
            "waxman-24-s0".into(),
        ];
        names.extend(corpus::names().iter().map(|s| s.to_string()));
        for name in names {
            let spec = roundtrip(&name);
            // And the other direction: FromStr must invert Display.
            assert_eq!(spec.to_string().parse::<TopoSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn parse_produces_typed_variants() {
        assert_eq!(roundtrip("ring-8"), TopoSpec::Ring(8));
        assert_eq!(roundtrip("grid-3x2"), TopoSpec::Grid { w: 3, h: 2 });
        assert_eq!(roundtrip("fat-tree-k4"), TopoSpec::FatTree { k: 4 });
        assert_eq!(
            roundtrip("er-64-s7"),
            TopoSpec::Seeded {
                kind: SeededKind::ErdosRenyi,
                n: 64,
                seed: 7
            }
        );
        assert_eq!(roundtrip("abilene"), TopoSpec::Corpus("abilene"));
    }

    #[test]
    fn malformed_names_report_the_offending_token() {
        let cases = [
            ("grid-4x", ""),
            ("ring-x", "x"),
            ("ring-2", "2"),
            ("ring-4000000", "4000000"),
            ("grid-3", "3"),
            ("ring", "ring"),
            ("torus-4", "torus-4"),
            ("fat-tree-k7", "7"),
            ("fat-tree-k200", "200"),
            ("leaf-spine-4x8", "4x8"),
            ("er-64", "64"),
            ("er-1000-s1", "1000-s1"),
            ("waxman-64-sx", "x"),
            ("atlantis", "atlantis"),
        ];
        for (name, token) in cases {
            let e = name.parse::<TopoSpec>().unwrap_err();
            assert_eq!(e.name, name);
            assert_eq!(e.token, token, "token for {name:?}");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn build_matches_estimate() {
        for name in [
            "ring-8",
            "grid-4x4",
            "pan-european",
            "fat-tree-k4",
            "fat-tree-k8",
            "leaf-spine-4x16x2",
            "er-32-s3",
            "waxman-24-s1",
            "abilene",
            "geant",
        ] {
            let spec: TopoSpec = name.parse().unwrap();
            let t = spec.build();
            assert_eq!(
                t.node_count(),
                spec.node_count_estimate(),
                "estimate for {name}"
            );
            if !matches!(spec, TopoSpec::Seeded { .. }) {
                assert_eq!(
                    t.edge_count(),
                    spec.edge_count_estimate(),
                    "edge estimate for {name}"
                );
            }
            assert!(t.is_connected(), "{name} must be connected");
        }
        assert_eq!(
            TopoSpec::FatTree { k: 8 }.node_count_estimate(),
            80,
            "the corpus's headline fat-tree"
        );
    }

    #[test]
    fn seeded_builds_are_reproducible() {
        let a = roundtrip("er-64-s7").build();
        let b = roundtrip("er-64-s7").build();
        let c = roundtrip("er-64-s8").build();
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.edges(), b.edges(), "same seed must draw the same graph");
        // Different seed, almost surely a different draw.
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn corpus_slugs_do_not_shadow_family_prefixes() {
        // Families are tried before the corpus, so a slug starting
        // with a family prefix would be unreachable (or worse, parse
        // as a malformed family). Keep the namespaces disjoint.
        let prefixes = [
            "ring-",
            "line-",
            "star-",
            "mesh-",
            "grid-",
            "fat-tree-",
            "leaf-spine-",
            "er-",
            "waxman-",
            "pan-european",
        ];
        for slug in corpus::names() {
            for p in prefixes {
                assert!(
                    !slug.starts_with(p),
                    "corpus slug {slug:?} shadows family prefix {p:?}"
                );
            }
        }
    }
}
