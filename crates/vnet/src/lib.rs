//! # rf-vnet — the virtual environment
//!
//! RouteFlow "executes switches' control logic through virtual machines
//! which mirror a physical topology. Each virtual machine runs a
//! routing control platform (e.g. Quagga) and is dynamically
//! interconnected with other VMs" (paper §1).
//!
//! A [`VmAgent`] is one such machine, spawned into the running
//! simulation by the RPC server when a `SwitchDetected` message arrives
//! (with a configurable boot delay standing in for LXC creation). It
//!
//! * dials back to the RF-controller and speaks the RouteFlow
//!   client/server protocol ([`rfproto`]) — the stand-in for
//!   RouteFlow's RFClient↔RFServer channel;
//! * receives its **configuration files** (`zebra.conf`, `ospfd.conf`,
//!   `bgpd.conf`) over that channel, parses them (`rf-routed`'s config
//!   parsers) and configures interfaces and daemons accordingly —
//!   re-receiving updated files when new links are detected;
//! * runs the OSPF daemon over its virtual NICs (OSPF packets are real
//!   IPv4-proto-89-in-Ethernet frames on the virtual interconnect);
//! * pushes every FIB change back to the RF-controller as
//!   `RouteAdd`/`RouteDel`, which RouteFlow translates into flow
//!   entries on the mirrored physical switch.

pub mod rfproto;
pub mod vm;

pub use rfproto::{RfFrameReader, RfMessage, RF_SERVICE};
pub use vm::{VmAgent, VmConfigHandle};
