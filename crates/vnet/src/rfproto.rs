//! The RouteFlow client/server protocol (RFClient ↔ RFServer).
//!
//! Length-prefixed binary frames on a reliable stream, hand-rolled like
//! every other codec in the repo.
//!
//! ```text
//! +--------+--------+----------+
//! | length | tag    | body ... |
//! | u32    | u8     |          |
//! +--------+--------+----------+
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rf_wire::Ipv4Cidr;
use std::net::Ipv4Addr;

/// Service the RF-controller listens on for VM (RFClient) connections.
pub const RF_SERVICE: u16 = 7892;

/// Protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RfMessage {
    /// VM → server: the VM finished booting and identifies itself.
    Booted { dpid: u64 },
    /// Server → VM: the current configuration files. The VM diffs and
    /// applies (this is "the RPC server writes routing configuration
    /// files" from the paper — delivered over the RFServer channel).
    WriteConfigs {
        zebra: String,
        ospf: String,
        bgp: String,
    },
    /// VM → server: a route entered the FIB.
    RouteAdd {
        prefix: Ipv4Cidr,
        /// `None` for connected routes.
        next_hop: Option<Ipv4Addr>,
        out_iface: u16,
        metric: u32,
    },
    /// VM → server: a prefix left the FIB.
    RouteDel { prefix: Ipv4Cidr },
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(data: &mut &[u8]) -> Option<String> {
    if data.remaining() < 4 {
        return None;
    }
    let len = data.get_u32() as usize;
    if data.remaining() < len {
        return None;
    }
    let s = String::from_utf8(data[..len].to_vec()).ok()?;
    data.advance(len);
    Some(s)
}

impl RfMessage {
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        let tag: u8 = match self {
            RfMessage::Booted { dpid } => {
                body.put_u64(*dpid);
                1
            }
            RfMessage::WriteConfigs { zebra, ospf, bgp } => {
                put_string(&mut body, zebra);
                put_string(&mut body, ospf);
                put_string(&mut body, bgp);
                2
            }
            RfMessage::RouteAdd {
                prefix,
                next_hop,
                out_iface,
                metric,
            } => {
                body.put_slice(&prefix.addr.octets());
                body.put_u8(prefix.prefix_len);
                body.put_u32(next_hop.map(u32::from).unwrap_or(0));
                body.put_u16(*out_iface);
                body.put_u32(*metric);
                3
            }
            RfMessage::RouteDel { prefix } => {
                body.put_slice(&prefix.addr.octets());
                body.put_u8(prefix.prefix_len);
                4
            }
        };
        let mut out = BytesMut::with_capacity(5 + body.len());
        out.put_u32(1 + body.len() as u32);
        out.put_u8(tag);
        out.put_slice(&body);
        out.freeze()
    }

    pub fn decode(mut data: &[u8]) -> Option<RfMessage> {
        if data.remaining() < 1 {
            return None;
        }
        let tag = data.get_u8();
        match tag {
            1 => {
                if data.remaining() < 8 {
                    return None;
                }
                Some(RfMessage::Booted {
                    dpid: data.get_u64(),
                })
            }
            2 => {
                let zebra = get_string(&mut data)?;
                let ospf = get_string(&mut data)?;
                let bgp = get_string(&mut data)?;
                Some(RfMessage::WriteConfigs { zebra, ospf, bgp })
            }
            3 => {
                if data.remaining() < 15 {
                    return None;
                }
                let mut o = [0u8; 4];
                data.copy_to_slice(&mut o);
                let prefix_len = data.get_u8();
                if prefix_len > 32 {
                    return None;
                }
                let nh = data.get_u32();
                let out_iface = data.get_u16();
                let metric = data.get_u32();
                Some(RfMessage::RouteAdd {
                    prefix: Ipv4Cidr::new(Ipv4Addr::from(o), prefix_len),
                    next_hop: if nh == 0 {
                        None
                    } else {
                        Some(Ipv4Addr::from(nh))
                    },
                    out_iface,
                    metric,
                })
            }
            4 => {
                if data.remaining() < 5 {
                    return None;
                }
                let mut o = [0u8; 4];
                data.copy_to_slice(&mut o);
                let prefix_len = data.get_u8();
                if prefix_len > 32 {
                    return None;
                }
                Some(RfMessage::RouteDel {
                    prefix: Ipv4Cidr::new(Ipv4Addr::from(o), prefix_len),
                })
            }
            _ => None,
        }
    }
}

/// Stream reassembler for RF frames.
#[derive(Clone, Default)]
pub struct RfFrameReader {
    /// Unconsumed tail of the last chunk (zero-copy fast path);
    /// non-empty only while `buf` is empty.
    chunk: Bytes,
    /// Reassembly buffer for fragmented input.
    buf: BytesMut,
}

impl RfFrameReader {
    pub fn new() -> RfFrameReader {
        RfFrameReader::default()
    }

    pub fn push(&mut self, data: &[u8]) {
        self.spill();
        self.buf.extend_from_slice(data);
    }

    /// Feed a whole stream chunk without copying when drained.
    pub fn push_bytes(&mut self, data: Bytes) {
        if self.buf.is_empty() && self.chunk.is_empty() {
            self.chunk = data;
        } else {
            self.spill();
            self.buf.extend_from_slice(&data);
        }
    }

    fn spill(&mut self) {
        if !self.chunk.is_empty() {
            self.buf.extend_from_slice(&self.chunk);
            self.chunk = Bytes::new();
        }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<RfMessage> {
        let avail: &[u8] = if self.chunk.is_empty() {
            &self.buf
        } else {
            &self.chunk
        };
        if avail.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if avail.len() < 4 + len {
            return None;
        }
        if self.chunk.is_empty() {
            let frame = self.buf.split_to(4 + len);
            RfMessage::decode(&frame[4..])
        } else {
            let frame = self.chunk.split_to(4 + len);
            RfMessage::decode(&frame[4..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<RfMessage> {
        vec![
            RfMessage::Booted { dpid: 0x1C },
            RfMessage::WriteConfigs {
                zebra: "hostname vm-1c\n".into(),
                ospf: "router ospf\n".into(),
                bgp: "router bgp 64512\n".into(),
            },
            RfMessage::RouteAdd {
                prefix: "172.31.0.4/30".parse().unwrap(),
                next_hop: Some("172.31.0.2".parse().unwrap()),
                out_iface: 1,
                metric: 20,
            },
            RfMessage::RouteAdd {
                prefix: "172.31.0.0/30".parse().unwrap(),
                next_hop: None,
                out_iface: 2,
                metric: 0,
            },
            RfMessage::RouteDel {
                prefix: "172.31.0.4/30".parse().unwrap(),
            },
        ]
    }

    #[test]
    fn roundtrip_all() {
        for m in samples() {
            let enc = m.encode();
            assert_eq!(RfMessage::decode(&enc[4..]), Some(m));
        }
    }

    #[test]
    fn reader_reassembles_fragments() {
        let mut stream = Vec::new();
        for m in samples() {
            stream.extend_from_slice(&m.encode());
        }
        let mut r = RfFrameReader::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(7) {
            r.push(chunk);
            while let Some(m) = r.next() {
                out.push(m);
            }
        }
        assert_eq!(out, samples());
    }

    #[test]
    fn bad_prefix_len_rejected() {
        let m = RfMessage::RouteDel {
            prefix: "10.0.0.0/8".parse().unwrap(),
        };
        let mut enc = m.encode().to_vec();
        enc[9] = 60; // prefix_len byte
        assert_eq!(RfMessage::decode(&enc[4..]), None);
    }
}
