//! The VM agent: a simulated container running zebra + ospfd.

use crate::rfproto::{RfFrameReader, RfMessage, RF_SERVICE};
use bytes::Bytes;
use rf_routed::config::{OspfConfig, ZebraConfig};
use rf_routed::ospf::daemon::{OspfDaemon, OspfEvent};
use rf_routed::ospf::ALL_SPF_ROUTERS;
use rf_routed::rib::{Rib, RibChange, Route, RouteProto};
use rf_sim::{Agent, AgentId, ConnId, ConnProfile, Ctx, StreamEvent, Time};
use rf_wire::{
    ArpOp, ArpPacket, EtherType, EthernetFrame, IpProtocol, Ipv4Cidr, Ipv4Packet, MacAddr,
};
use std::collections::BTreeMap;
use std::time::Duration;

const T_BOOT: u64 = 1;
const T_OSPF: u64 = 2;

/// MAC address for the AllSPFRouters IPv4 multicast group.
const OSPF_MCAST_MAC: MacAddr = MacAddr([0x01, 0x00, 0x5E, 0x00, 0x00, 0x05]);

/// One virtual machine of the virtual environment.
#[derive(Clone)]
pub struct VmAgent {
    dpid: u64,
    rf_server: AgentId,
    boot_delay: Duration,
    conn: Option<ConnId>,
    reader: RfFrameReader,
    booted: bool,
    /// Configured interfaces: iface index → address.
    ifaces: BTreeMap<u16, Ipv4Cidr>,
    ospf: Option<OspfDaemon>,
    rib: Rib,
    ospf_deadline: Option<Time>,
    /// Per-iface cache of the last multicast OSPF transmit:
    /// `payload → emitted frame`. Steady-state hellos repeat the same
    /// payload every interval; comparing ~48 bytes beats re-emitting
    /// OSPF + IPv4 (checksum included) + Ethernet each time. The frame
    /// is a pure function of `(dpid, iface, iface address, payload)`,
    /// and the cache is dropped whenever the interface table changes.
    tx_cache: BTreeMap<u16, (Bytes, Bytes)>,
    /// Diagnostics: routes pushed to the RF-controller.
    pub routes_announced: u64,
    pub routes_withdrawn: u64,
}

/// Placeholder handle kept for API stability (configuration flows over
/// the RFClient channel; direct handles are not needed).
pub struct VmConfigHandle;

impl VmAgent {
    pub fn new(dpid: u64, rf_server: AgentId, boot_delay: Duration) -> VmAgent {
        VmAgent {
            dpid,
            rf_server,
            boot_delay,
            conn: None,
            reader: RfFrameReader::new(),
            booted: false,
            ifaces: BTreeMap::new(),
            ospf: None,
            rib: Rib::new(),
            ospf_deadline: None,
            tx_cache: BTreeMap::new(),
            routes_announced: 0,
            routes_withdrawn: 0,
        }
    }

    pub fn dpid(&self) -> u64 {
        self.dpid
    }

    /// Number of FIB entries (test accessor).
    pub fn fib_len(&self) -> usize {
        self.rib.fib_len()
    }

    /// The installed FIB — best route per prefix (invariant-checker
    /// probe: the chaos campaign compares these against SPF on the
    /// surviving graph).
    pub fn fib_routes(&self) -> Vec<rf_routed::rib::Route> {
        self.rib.fib()
    }

    /// Effective OSPF (hello, dead) intervals, once configured.
    pub fn ospf_timers(&self) -> Option<(Duration, Duration)> {
        self.ospf.as_ref().map(|d| d.timers())
    }

    /// OSPF neighbor view (test accessor).
    pub fn ospf_neighbors(&self) -> Vec<(u16, u32, rf_routed::ospf::NeighborState)> {
        self.ospf
            .as_ref()
            .map(|d| d.neighbors())
            .unwrap_or_default()
    }

    fn send_rf(&mut self, ctx: &mut Ctx<'_>, msg: RfMessage) {
        if let Some(conn) = self.conn {
            ctx.conn_send(conn, msg.encode());
        }
    }

    fn push_rib_changes(&mut self, ctx: &mut Ctx<'_>, changes: Vec<RibChange>) {
        for ch in changes {
            match ch {
                RibChange::Installed(r) => {
                    self.routes_announced += 1;
                    self.send_rf(
                        ctx,
                        RfMessage::RouteAdd {
                            prefix: r.prefix,
                            next_hop: r.next_hop,
                            out_iface: r.out_iface,
                            metric: r.metric,
                        },
                    );
                }
                RibChange::Withdrawn(prefix) => {
                    self.routes_withdrawn += 1;
                    self.send_rf(ctx, RfMessage::RouteDel { prefix });
                }
            }
        }
    }

    fn process_ospf_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<OspfEvent>) {
        for ev in events {
            match ev {
                OspfEvent::Transmit { iface, dst, packet } => {
                    let Some(addr) = self.ifaces.get(&iface).copied() else {
                        continue;
                    };
                    if let Some((cached_payload, cached_frame)) = self.tx_cache.get(&iface) {
                        // Cache applies to the multicast path only (all
                        // current daemon output; a unicast dst would
                        // produce a different IP header).
                        if dst == ALL_SPF_ROUTERS && *cached_payload == packet {
                            ctx.send_frame(u32::from(iface), cached_frame.clone());
                            continue;
                        }
                    }
                    let mut ip = Ipv4Packet::new(addr.addr, dst, IpProtocol::OSPF, packet.clone());
                    ip.ttl = 1;
                    let frame = EthernetFrame::new(
                        OSPF_MCAST_MAC,
                        MacAddr::from_dpid_port(self.dpid, iface),
                        EtherType::IPV4,
                        ip.emit(),
                    )
                    .emit();
                    if dst == ALL_SPF_ROUTERS {
                        self.tx_cache.insert(iface, (packet, frame.clone()));
                    }
                    ctx.send_frame(u32::from(iface), frame);
                }
                OspfEvent::RoutesChanged(routes) => {
                    let changes = self.rib.replace_protocol(RouteProto::Ospf, &routes);
                    self.push_rib_changes(ctx, changes);
                }
            }
        }
        self.reschedule_ospf(ctx);
    }

    fn reschedule_ospf(&mut self, ctx: &mut Ctx<'_>) {
        let Some(d) = &self.ospf else { return };
        let Some(at) = d.poll_at() else { return };
        let need = match self.ospf_deadline {
            Some(cur) => at < cur || cur <= ctx.now(),
            None => true,
        };
        if need {
            self.ospf_deadline = Some(at);
            ctx.schedule_at(at, T_OSPF);
        }
    }

    fn apply_configs(&mut self, ctx: &mut Ctx<'_>, zebra: &str, ospf_text: &str) {
        let Ok(zcfg) = ZebraConfig::parse(zebra) else {
            ctx.trace("vm.bad_config", "unparseable zebra.conf");
            return;
        };
        let Ok(ocfg) = OspfConfig::parse(ospf_text) else {
            ctx.trace("vm.bad_config", "unparseable ospfd.conf");
            return;
        };
        // Desired interface set from zebra.conf ("ethN" → N).
        let mut desired: BTreeMap<u16, Ipv4Cidr> = BTreeMap::new();
        for (name, addr) in &zcfg.interfaces {
            if let Some(idx) = name.strip_prefix("eth").and_then(|s| s.parse::<u16>().ok()) {
                desired.insert(idx, *addr);
            }
        }
        let now = ctx.now();
        // Boot the OSPF daemon on first configuration.
        if self.ospf.is_none() {
            let ifaces: Vec<(u16, Ipv4Cidr)> = desired.iter().map(|(i, a)| (*i, *a)).collect();
            let mut d = OspfDaemon::from_config(&ocfg, &ifaces);
            let ev = d.start(now);
            self.ospf = Some(d);
            self.ifaces = desired.clone();
            let changes: Vec<RibChange> = desired
                .iter()
                .flat_map(|(i, a)| {
                    self.rib.add(Route::connected(
                        Ipv4Cidr::new(a.network(), a.prefix_len),
                        *i,
                    ))
                })
                .collect();
            self.push_rib_changes(ctx, changes);
            self.process_ospf_events(ctx, ev);
            ctx.trace(
                "vm.configured",
                format!("dpid {:#x}: {} interfaces", self.dpid, self.ifaces.len()),
            );
            return;
        }
        // Incremental reconfiguration: diff interfaces.
        let added: Vec<(u16, Ipv4Cidr)> = desired
            .iter()
            .filter(|(i, a)| self.ifaces.get(i) != Some(a))
            .map(|(i, a)| (*i, *a))
            .collect();
        let removed: Vec<u16> = self
            .ifaces
            .keys()
            .filter(|i| !desired.contains_key(i))
            .copied()
            .collect();
        for (idx, addr) in added {
            self.ifaces.insert(idx, addr);
            self.tx_cache.remove(&idx);
            let ch = self.rib.add(Route::connected(
                Ipv4Cidr::new(addr.network(), addr.prefix_len),
                idx,
            ));
            self.push_rib_changes(ctx, ch);
            let ev = self.ospf.as_mut().unwrap().add_interface(idx, addr, now);
            self.process_ospf_events(ctx, ev);
        }
        for idx in removed {
            self.tx_cache.remove(&idx);
            if let Some(addr) = self.ifaces.remove(&idx) {
                let ch = self.rib.remove(
                    Ipv4Cidr::new(addr.network(), addr.prefix_len),
                    RouteProto::Connected,
                );
                self.push_rib_changes(ctx, ch);
                let ev = self.ospf.as_mut().unwrap().remove_interface(idx, now);
                self.process_ospf_events(ctx, ev);
            }
        }
        self.reschedule_ospf(ctx);
    }
}

impl Agent for VmAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // "Creating a VM" takes time — the boot delay models LXC
        // provisioning (the paper's manual equivalent is 5 minutes).
        ctx.schedule(self.boot_delay, T_BOOT);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            T_BOOT => {
                self.booted = true;
                self.conn = Some(ctx.connect(self.rf_server, RF_SERVICE, ConnProfile::default()));
            }
            T_OSPF => {
                self.ospf_deadline = None;
                if let Some(mut d) = self.ospf.take() {
                    let ev = d.tick(ctx.now());
                    self.ospf = Some(d);
                    self.process_ospf_events(ctx, ev);
                }
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: u32, frame: Bytes) {
        let iface = port as u16;
        let Ok(eth) = EthernetFrame::parse_bytes(&frame) else {
            return;
        };
        match eth.ethertype {
            EtherType::ARP => {
                let Ok(arp) = ArpPacket::parse(&eth.payload) else {
                    return;
                };
                let Some(addr) = self.ifaces.get(&iface) else {
                    return;
                };
                if arp.op == ArpOp::Request && arp.target_ip == addr.addr {
                    let my_mac = MacAddr::from_dpid_port(self.dpid, iface);
                    let reply = ArpPacket::reply_to(&arp, my_mac);
                    let out =
                        EthernetFrame::new(arp.sender_mac, my_mac, EtherType::ARP, reply.emit());
                    ctx.send_frame(port, out.emit());
                }
            }
            EtherType::IPV4 => {
                let Ok(ip) = Ipv4Packet::parse_bytes(&eth.payload) else {
                    return;
                };
                if ip.protocol == IpProtocol::OSPF
                    && (ip.dst == ALL_SPF_ROUTERS
                        || self.ifaces.get(&iface).is_some_and(|a| a.addr == ip.dst))
                {
                    if let Some(mut d) = self.ospf.take() {
                        let ev = d.handle_packet(iface, ip.src, &ip.payload, ctx.now());
                        self.ospf = Some(d);
                        self.process_ospf_events(ctx, ev);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, event: StreamEvent) {
        if Some(conn) != self.conn {
            return;
        }
        match event {
            StreamEvent::Opened { .. } => {
                let dpid = self.dpid;
                self.send_rf(ctx, RfMessage::Booted { dpid });
                ctx.trace("vm.booted", format!("dpid {dpid:#x}"));
            }
            StreamEvent::Data(data) => {
                self.reader.push_bytes(data);
                while let Some(msg) = self.reader.next() {
                    if let RfMessage::WriteConfigs { zebra, ospf, .. } = msg {
                        self.apply_configs(ctx, &zebra, &ospf);
                    }
                }
            }
            StreamEvent::Closed => {
                self.conn = None;
            }
        }
    }
}
