//! Link-layer and network-layer addresses.
//!
//! IPv4 addresses reuse [`std::net::Ipv4Addr`]; this module adds the
//! 48-bit [`MacAddr`] and [`Ipv4Cidr`] (address + prefix length), which
//! the topology controller uses to carve per-link /30 subnets out of
//! the administrator-provided virtual-environment range.

use crate::WireError;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Implement `Debug` by forwarding to `Display` (addresses read better
/// without struct noise in trace output).
macro_rules! fmt_debug_via_display {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Display::fmt(self, f)
        }
    };
}

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);
    /// The all-zero address (unset).
    pub const ZERO: MacAddr = MacAddr([0; 6]);
    /// The LLDP multicast destination `01:80:c2:00:00:0e`.
    pub const LLDP_MULTICAST: MacAddr = MacAddr([0x01, 0x80, 0xC2, 0x00, 0x00, 0x0E]);

    /// Deterministic locally-administered MAC derived from a datapath id
    /// and port number; used for switch and VM interfaces.
    pub fn from_dpid_port(dpid: u64, port: u16) -> MacAddr {
        let d = dpid.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, d[5], d[6], d[7], (port >> 8) as u8, port as u8])
    }

    /// True for group (multicast/broadcast) addresses.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }

    pub fn from_bytes(b: &[u8]) -> Result<MacAddr, WireError> {
        if b.len() < 6 {
            return Err(WireError::Truncated);
        }
        let mut m = [0u8; 6];
        m.copy_from_slice(&b[..6]);
        Ok(MacAddr(m))
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fmt_debug_via_display!();
}

impl FromStr for MacAddr {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(WireError::Malformed);
        }
        let mut m = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            m[i] = u8::from_str_radix(p, 16).map_err(|_| WireError::Malformed)?;
        }
        Ok(MacAddr(m))
    }
}

/// An IPv4 address with a prefix length, e.g. `10.0.0.0/30`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Cidr {
    pub addr: Ipv4Addr,
    pub prefix_len: u8,
}

impl Ipv4Cidr {
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Ipv4Cidr {
        assert!(prefix_len <= 32, "prefix length {prefix_len} > 32");
        Ipv4Cidr { addr, prefix_len }
    }

    /// The netmask as a u32 (e.g. /30 → `0xFFFF_FFFC`).
    pub fn mask(&self) -> u32 {
        if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix_len)
        }
    }

    /// The network address (host bits cleared).
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.addr) & self.mask())
    }

    /// True if `other` falls inside this prefix.
    pub fn contains(&self, other: Ipv4Addr) -> bool {
        u32::from(other) & self.mask() == u32::from(self.network())
    }

    /// Number of addresses covered (including network/broadcast).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// The `i`-th address inside this prefix (0 = network address).
    pub fn nth(&self, i: u32) -> Option<Ipv4Addr> {
        if u64::from(i) >= self.size() {
            return None;
        }
        Some(Ipv4Addr::from(u32::from(self.network()) + i))
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

impl fmt::Debug for Ipv4Cidr {
    fmt_debug_via_display!();
}

impl FromStr for Ipv4Cidr {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, p) = s.split_once('/').ok_or(WireError::Malformed)?;
        let addr: Ipv4Addr = a.parse().map_err(|_| WireError::Malformed)?;
        let prefix_len: u8 = p.parse().map_err(|_| WireError::Malformed)?;
        if prefix_len > 32 {
            return Err(WireError::Malformed);
        }
        Ok(Ipv4Cidr { addr, prefix_len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_parse() {
        let m: MacAddr = "02:00:00:00:01:0a".parse().unwrap();
        assert_eq!(m.to_string(), "02:00:00:00:01:0a");
        assert!("02:00:00".parse::<MacAddr>().is_err());
        assert!("zz:00:00:00:00:00".parse::<MacAddr>().is_err());
    }

    #[test]
    fn mac_multicast_detection() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::LLDP_MULTICAST.is_multicast());
        assert!(!MacAddr([0x02, 0, 0, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn mac_from_dpid_port_is_unique_and_local() {
        let a = MacAddr::from_dpid_port(1, 1);
        let b = MacAddr::from_dpid_port(1, 2);
        let c = MacAddr::from_dpid_port(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_multicast());
        assert_eq!(a.0[0], 0x02);
    }

    #[test]
    fn mac_from_bytes_truncated() {
        assert_eq!(MacAddr::from_bytes(&[1, 2, 3]), Err(WireError::Truncated));
        assert!(MacAddr::from_bytes(&[1, 2, 3, 4, 5, 6, 7]).is_ok());
    }

    #[test]
    fn cidr_mask_and_network() {
        let c: Ipv4Cidr = "10.1.2.3/24".parse().unwrap();
        assert_eq!(c.mask(), 0xFFFF_FF00);
        assert_eq!(c.network(), Ipv4Addr::new(10, 1, 2, 0));
        assert!(c.contains(Ipv4Addr::new(10, 1, 2, 200)));
        assert!(!c.contains(Ipv4Addr::new(10, 1, 3, 1)));
    }

    #[test]
    fn cidr_slash30_has_four_addrs() {
        let c: Ipv4Cidr = "10.0.0.4/30".parse().unwrap();
        assert_eq!(c.size(), 4);
        assert_eq!(c.nth(1), Some(Ipv4Addr::new(10, 0, 0, 5)));
        assert_eq!(c.nth(2), Some(Ipv4Addr::new(10, 0, 0, 6)));
        assert_eq!(c.nth(4), None);
    }

    #[test]
    fn cidr_zero_prefix() {
        let c = Ipv4Cidr::new(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert_eq!(c.mask(), 0);
        assert!(c.contains(Ipv4Addr::new(255, 255, 255, 255)));
    }

    #[test]
    fn cidr_parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Ipv4Cidr>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Cidr>().is_err());
        assert!("x/8".parse::<Ipv4Cidr>().is_err());
    }

    #[test]
    fn cidr_display() {
        let c = Ipv4Cidr::new(Ipv4Addr::new(192, 168, 0, 1), 16);
        assert_eq!(c.to_string(), "192.168.0.1/16");
    }
}
