//! ARP (RFC 826) for IPv4 over Ethernet.
//!
//! Hosts attached to the OpenFlow network resolve their first-hop
//! gateway with ARP; in RouteFlow the controller answers these requests
//! on behalf of the VM that owns the gateway address, so both request
//! and reply encodings are exercised on the PACKET_IN / PACKET_OUT
//! path.

use crate::addr::MacAddr;
use crate::WireError;
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// ARP operation codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArpOp {
    Request,
    Reply,
}

impl ArpOp {
    fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }
    fn from_u16(v: u16) -> Result<ArpOp, WireError> {
        match v {
            1 => Ok(ArpOp::Request),
            2 => Ok(ArpOp::Reply),
            _ => Err(WireError::Unsupported),
        }
    }
}

/// An ARP packet for IPv4-over-Ethernet (the only combination we
/// support; other hardware/protocol types are rejected).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArpPacket {
    pub op: ArpOp,
    pub sender_mac: MacAddr,
    pub sender_ip: Ipv4Addr,
    pub target_mac: MacAddr,
    pub target_ip: Ipv4Addr,
}

pub const ARP_LEN: usize = 28;

impl ArpPacket {
    /// Build a broadcast who-has request.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Build the reply answering `req` with `mac` owning `req.target_ip`.
    pub fn reply_to(req: &ArpPacket, mac: MacAddr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: mac,
            sender_ip: req.target_ip,
            target_mac: req.sender_mac,
            target_ip: req.sender_ip,
        }
    }

    pub fn parse(data: &[u8]) -> Result<ArpPacket, WireError> {
        if data.len() < ARP_LEN {
            return Err(WireError::Truncated);
        }
        let htype = u16::from_be_bytes([data[0], data[1]]);
        let ptype = u16::from_be_bytes([data[2], data[3]]);
        let hlen = data[4];
        let plen = data[5];
        if htype != 1 || ptype != 0x0800 || hlen != 6 || plen != 4 {
            return Err(WireError::Unsupported);
        }
        let op = ArpOp::from_u16(u16::from_be_bytes([data[6], data[7]]))?;
        Ok(ArpPacket {
            op,
            sender_mac: MacAddr::from_bytes(&data[8..14])?,
            sender_ip: Ipv4Addr::new(data[14], data[15], data[16], data[17]),
            target_mac: MacAddr::from_bytes(&data[18..24])?,
            target_ip: Ipv4Addr::new(data[24], data[25], data[26], data[27]),
        })
    }

    pub fn emit(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(ARP_LEN);
        buf.put_u16(1); // Ethernet
        buf.put_u16(0x0800); // IPv4
        buf.put_u8(6);
        buf.put_u8(4);
        buf.put_u16(self.op.to_u16());
        buf.put_slice(self.sender_mac.as_bytes());
        buf.put_slice(&self.sender_ip.octets());
        buf.put_slice(self.target_mac.as_bytes());
        buf.put_slice(&self.target_ip.octets());
        buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_request() {
        let p = ArpPacket::request(
            MacAddr([2, 0, 0, 0, 0, 1]),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let wire = p.emit();
        assert_eq!(wire.len(), ARP_LEN);
        assert_eq!(ArpPacket::parse(&wire).unwrap(), p);
    }

    #[test]
    fn roundtrip_reply() {
        let req = ArpPacket::request(
            MacAddr([2, 0, 0, 0, 0, 1]),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 254),
        );
        let rep = ArpPacket::reply_to(&req, MacAddr([2, 0, 0, 0, 0, 99]));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, Ipv4Addr::new(10, 0, 0, 254));
        assert_eq!(rep.target_mac, req.sender_mac);
        assert_eq!(rep.target_ip, req.sender_ip);
        let parsed = ArpPacket::parse(&rep.emit()).unwrap();
        assert_eq!(parsed, rep);
    }

    #[test]
    fn rejects_non_ipv4_over_ethernet() {
        let p = ArpPacket::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED);
        let mut wire = p.emit().to_vec();
        wire[0] = 0;
        wire[1] = 6; // htype = IEEE 802 something
        assert_eq!(ArpPacket::parse(&wire), Err(WireError::Unsupported));
    }

    #[test]
    fn rejects_unknown_op() {
        let p = ArpPacket::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED);
        let mut wire = p.emit().to_vec();
        wire[7] = 9;
        assert_eq!(ArpPacket::parse(&wire), Err(WireError::Unsupported));
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(ArpPacket::parse(&[0u8; 27]), Err(WireError::Truncated));
    }

    #[test]
    fn tolerates_ethernet_padding() {
        // ARP inside a padded 60-byte frame has trailing zeros.
        let p = ArpPacket::request(
            MacAddr([2, 0, 0, 0, 0, 1]),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let mut wire = p.emit().to_vec();
        wire.extend_from_slice(&[0u8; 18]);
        assert_eq!(ArpPacket::parse(&wire).unwrap(), p);
    }
}
