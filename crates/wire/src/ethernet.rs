//! Ethernet II framing.
//!
//! The data plane of the reproduction carries only Ethernet II frames
//! (no 802.3 LLC, no 802.1Q VLAN tags — matching what the paper's
//! Open vSwitch setup forwards and what the OF 1.0 match we implement
//! can classify; see DESIGN.md's omitted-features list).

use crate::addr::MacAddr;
use crate::WireError;
use bytes::{BufMut, Bytes, BytesMut};

/// Well-known EtherType values used in the reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EtherType(pub u16);

impl EtherType {
    pub const IPV4: EtherType = EtherType(0x0800);
    pub const ARP: EtherType = EtherType(0x0806);
    pub const LLDP: EtherType = EtherType(0x88CC);
}

/// Minimum frame length so the wire reaches the classic 64-byte
/// minimum (we do not model the 4-byte FCS, so 60 bytes);
/// [`EthernetFrame::emit`] zero-pads every frame up to this.
pub const MIN_FRAME_NO_FCS: usize = 60;
/// Ethernet II header: dst(6) + src(6) + ethertype(2).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A parsed (owned) Ethernet II frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EthernetFrame {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Parse a frame from raw bytes. Padding added to reach the minimum
    /// frame size is *kept* in `payload`; upper layers carry their own
    /// length fields and must tolerate trailing padding, as on real
    /// networks.
    pub fn parse(data: &[u8]) -> Result<EthernetFrame, WireError> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(EthernetFrame {
            dst: MacAddr::from_bytes(&data[0..6])?,
            src: MacAddr::from_bytes(&data[6..12])?,
            ethertype: EtherType(u16::from_be_bytes([data[12], data[13]])),
            payload: Bytes::copy_from_slice(&data[14..]),
        })
    }

    /// [`EthernetFrame::parse`] without copying: when the caller holds
    /// the frame as [`Bytes`] (every kernel delivery does), the payload
    /// is a zero-copy slice of the same storage. Identical semantics to
    /// `parse`, minus one allocation per frame — which matters, because
    /// every simulated hop of every frame parses here.
    pub fn parse_bytes(data: &Bytes) -> Result<EthernetFrame, WireError> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(EthernetFrame {
            dst: MacAddr::from_bytes(&data[0..6])?,
            src: MacAddr::from_bytes(&data[6..12])?,
            ethertype: EtherType(u16::from_be_bytes([data[12], data[13]])),
            payload: data.slice(ETHERNET_HEADER_LEN..),
        })
    }

    /// Serialize to wire bytes, padding to the 60-byte minimum.
    pub fn emit(&self) -> Bytes {
        let len = ETHERNET_HEADER_LEN + self.payload.len();
        let mut buf = BytesMut::with_capacity(len.max(MIN_FRAME_NO_FCS));
        buf.put_slice(self.dst.as_bytes());
        buf.put_slice(self.src.as_bytes());
        buf.put_u16(self.ethertype.0);
        buf.put_slice(&self.payload);
        while buf.len() < MIN_FRAME_NO_FCS {
            buf.put_u8(0);
        }
        buf.freeze()
    }

    /// Convenience constructor.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Bytes) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetFrame {
        EthernetFrame::new(
            MacAddr([1, 2, 3, 4, 5, 6]),
            MacAddr([7, 8, 9, 10, 11, 12]),
            EtherType::IPV4,
            Bytes::from(vec![0xAB; 100]),
        )
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let wire = f.emit();
        let parsed = EthernetFrame::parse(&wire).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn short_payload_is_padded_to_minimum() {
        let f = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::ZERO,
            EtherType::ARP,
            Bytes::from_static(b"hi"),
        );
        let wire = f.emit();
        assert_eq!(wire.len(), 60);
        let parsed = EthernetFrame::parse(&wire).unwrap();
        // Padding is retained in the payload.
        assert_eq!(parsed.payload.len(), 60 - ETHERNET_HEADER_LEN);
        assert_eq!(&parsed.payload[..2], b"hi");
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(EthernetFrame::parse(&[0u8; 13]), Err(WireError::Truncated));
    }

    #[test]
    fn ethertype_constants() {
        assert_eq!(EtherType::IPV4.0, 0x0800);
        assert_eq!(EtherType::ARP.0, 0x0806);
        assert_eq!(EtherType::LLDP.0, 0x88CC);
    }

    #[test]
    fn header_fields_at_right_offsets() {
        let wire = sample().emit();
        assert_eq!(&wire[0..6], &[1, 2, 3, 4, 5, 6]);
        assert_eq!(&wire[6..12], &[7, 8, 9, 10, 11, 12]);
        assert_eq!(&wire[12..14], &[0x08, 0x00]);
    }
}
