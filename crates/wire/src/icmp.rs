//! ICMP echo (RFC 792) — request/reply only.
//!
//! Used by the quickstart example and the integration tests as the
//! end-to-end "is the network configured yet?" probe, mirroring how an
//! operator would ping across the freshly configured RouteFlow network.

use crate::{internet_checksum, WireError};
use bytes::{BufMut, Bytes, BytesMut};

/// ICMP message kinds we implement. Anything else parses to `Other`
/// and is passed through opaquely (routers must not choke on it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IcmpPacket {
    EchoRequest {
        ident: u16,
        seq: u16,
        payload: Bytes,
    },
    EchoReply {
        ident: u16,
        seq: u16,
        payload: Bytes,
    },
    /// Unparsed-but-valid ICMP of another type.
    Other { ty: u8, code: u8, rest: Bytes },
}

pub const ICMP_HEADER_LEN: usize = 8;

impl IcmpPacket {
    pub fn echo_request(ident: u16, seq: u16, payload: Bytes) -> Self {
        IcmpPacket::EchoRequest {
            ident,
            seq,
            payload,
        }
    }

    /// Construct the reply for a request (panics if not a request).
    pub fn reply_to(req: &IcmpPacket) -> IcmpPacket {
        match req {
            IcmpPacket::EchoRequest {
                ident,
                seq,
                payload,
            } => IcmpPacket::EchoReply {
                ident: *ident,
                seq: *seq,
                payload: payload.clone(),
            },
            _ => panic!("reply_to called on non-request"),
        }
    }

    pub fn parse(data: &[u8]) -> Result<IcmpPacket, WireError> {
        Self::parse_validated(data)?;
        Ok(Self::assemble(
            data,
            Bytes::copy_from_slice(&data[8..]),
            Bytes::copy_from_slice(&data[4..]),
        ))
    }

    /// [`IcmpPacket::parse`] with zero-copy payload slices of the
    /// caller's [`Bytes`]. Identical semantics, checksum included.
    pub fn parse_bytes(data: &Bytes) -> Result<IcmpPacket, WireError> {
        Self::parse_validated(data)?;
        Ok(Self::assemble(data, data.slice(8..), data.slice(4..)))
    }

    fn parse_validated(data: &[u8]) -> Result<(), WireError> {
        if data.len() < ICMP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if internet_checksum(data) != 0 {
            return Err(WireError::BadChecksum);
        }
        Ok(())
    }

    fn assemble(data: &[u8], payload: Bytes, rest: Bytes) -> IcmpPacket {
        let ty = data[0];
        let code = data[1];
        let ident = u16::from_be_bytes([data[4], data[5]]);
        let seq = u16::from_be_bytes([data[6], data[7]]);
        match (ty, code) {
            (8, 0) => IcmpPacket::EchoRequest {
                ident,
                seq,
                payload,
            },
            (0, 0) => IcmpPacket::EchoReply {
                ident,
                seq,
                payload,
            },
            _ => IcmpPacket::Other { ty, code, rest },
        }
    }

    pub fn emit(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            IcmpPacket::EchoRequest {
                ident,
                seq,
                payload,
            } => {
                buf.put_u8(8);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u16(*ident);
                buf.put_u16(*seq);
                buf.put_slice(payload);
            }
            IcmpPacket::EchoReply {
                ident,
                seq,
                payload,
            } => {
                buf.put_u8(0);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u16(*ident);
                buf.put_u16(*seq);
                buf.put_slice(payload);
            }
            IcmpPacket::Other { ty, code, rest } => {
                buf.put_u8(*ty);
                buf.put_u8(*code);
                buf.put_u16(0);
                buf.put_slice(rest);
            }
        }
        let ck = internet_checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_request() {
        let p = IcmpPacket::echo_request(0x1234, 7, Bytes::from_static(b"abcdefgh"));
        assert_eq!(IcmpPacket::parse(&p.emit()).unwrap(), p);
    }

    #[test]
    fn reply_mirrors_request() {
        let req = IcmpPacket::echo_request(42, 3, Bytes::from_static(b"data"));
        let rep = IcmpPacket::reply_to(&req);
        match IcmpPacket::parse(&rep.emit()).unwrap() {
            IcmpPacket::EchoReply {
                ident,
                seq,
                payload,
            } => {
                assert_eq!(ident, 42);
                assert_eq!(seq, 3);
                assert_eq!(&payload[..], b"data");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn checksum_enforced() {
        let p = IcmpPacket::echo_request(1, 1, Bytes::new());
        let mut wire = p.emit().to_vec();
        wire[4] ^= 0xFF;
        assert_eq!(IcmpPacket::parse(&wire), Err(WireError::BadChecksum));
    }

    #[test]
    fn other_types_pass_through() {
        let p = IcmpPacket::Other {
            ty: 11, // time exceeded
            code: 0,
            rest: Bytes::from_static(&[0, 0, 0, 0, 1, 2, 3]),
        };
        let parsed = IcmpPacket::parse(&p.emit()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(IcmpPacket::parse(&[8, 0, 0]), Err(WireError::Truncated));
    }
}
