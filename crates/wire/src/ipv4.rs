//! IPv4 (RFC 791) header parsing and emission.
//!
//! Options are not supported (emitted IHL is always 5; received options
//! are skipped). Fragmentation is not implemented — the simulated MTU
//! is uniform and the video payload is sized below it, as in the
//! paper's emulated network.

use crate::{internet_checksum, WireError};
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// IP protocol numbers used by the reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IpProtocol(pub u8);

impl IpProtocol {
    pub const ICMP: IpProtocol = IpProtocol(1);
    pub const TCP: IpProtocol = IpProtocol(6);
    pub const UDP: IpProtocol = IpProtocol(17);
    /// OSPF runs directly over IP (protocol 89).
    pub const OSPF: IpProtocol = IpProtocol(89);
}

pub const IPV4_HEADER_LEN: usize = 20;

/// A parsed (owned) IPv4 packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ipv4Packet {
    pub dscp: u8,
    pub identification: u16,
    pub ttl: u8,
    pub protocol: IpProtocol,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub payload: Bytes,
}

/// Parsed header fields, shared by the copying and zero-copy parsers.
struct HeaderFields {
    dscp: u8,
    identification: u16,
    ttl: u8,
    protocol: IpProtocol,
    src: Ipv4Addr,
    dst: Ipv4Addr,
}

impl Ipv4Packet {
    fn from_fields(f: HeaderFields, payload: Bytes) -> Self {
        Ipv4Packet {
            dscp: f.dscp,
            identification: f.identification,
            ttl: f.ttl,
            protocol: f.protocol,
            src: f.src,
            dst: f.dst,
            payload,
        }
    }

    /// Standard constructor with TTL 64.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload: Bytes) -> Self {
        Ipv4Packet {
            dscp: 0,
            identification: 0,
            ttl: 64,
            protocol,
            src,
            dst,
            payload,
        }
    }

    /// Parse and verify the header checksum. Trailing bytes beyond
    /// `total_length` (Ethernet padding) are discarded.
    pub fn parse(data: &[u8]) -> Result<Ipv4Packet, WireError> {
        let (fields, payload_range) = Self::parse_header(data)?;
        Ok(Ipv4Packet::from_fields(
            fields,
            Bytes::copy_from_slice(&data[payload_range]),
        ))
    }

    /// [`Ipv4Packet::parse`] without copying the payload — a zero-copy
    /// slice of the caller's [`Bytes`]. Identical semantics (including
    /// checksum verification), minus one allocation per packet.
    pub fn parse_bytes(data: &Bytes) -> Result<Ipv4Packet, WireError> {
        let (fields, payload_range) = Self::parse_header(data)?;
        Ok(Ipv4Packet::from_fields(fields, data.slice(payload_range)))
    }

    fn parse_header(data: &[u8]) -> Result<(HeaderFields, std::ops::Range<usize>), WireError> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(WireError::Unsupported);
        }
        let ihl = (data[0] & 0x0F) as usize * 4;
        if ihl < IPV4_HEADER_LEN || data.len() < ihl {
            return Err(WireError::Malformed);
        }
        if internet_checksum(&data[..ihl]) != 0 {
            return Err(WireError::BadChecksum);
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < ihl || total_len > data.len() {
            return Err(WireError::BadLength);
        }
        let flags_frag = u16::from_be_bytes([data[6], data[7]]);
        if flags_frag & 0x3FFF != 0 {
            // MF set or fragment offset non-zero: we don't reassemble.
            return Err(WireError::Unsupported);
        }
        Ok((
            HeaderFields {
                dscp: data[1] >> 2,
                identification: u16::from_be_bytes([data[4], data[5]]),
                ttl: data[8],
                protocol: IpProtocol(data[9]),
                src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
                dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            },
            ihl..total_len,
        ))
    }

    /// Serialize with a freshly computed header checksum.
    pub fn emit(&self) -> Bytes {
        let total_len = IPV4_HEADER_LEN + self.payload.len();
        assert!(total_len <= u16::MAX as usize, "IPv4 packet too large");
        let mut buf = BytesMut::with_capacity(total_len);
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(self.dscp << 2);
        buf.put_u16(total_len as u16);
        buf.put_u16(self.identification);
        buf.put_u16(0); // flags + fragment offset
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol.0);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        let ck = internet_checksum(&buf[..IPV4_HEADER_LEN]);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Copy with TTL decremented (router forwarding). Returns `None`
    /// when the TTL would reach zero and the packet must be dropped.
    pub fn forwarded(&self) -> Option<Ipv4Packet> {
        if self.ttl <= 1 {
            return None;
        }
        let mut p = self.clone();
        p.ttl -= 1;
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::UDP,
            Bytes::from(vec![1, 2, 3, 4, 5]),
        )
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let parsed = Ipv4Packet::parse(&p.emit()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn checksum_is_valid_on_wire() {
        let wire = sample().emit();
        assert_eq!(internet_checksum(&wire[..IPV4_HEADER_LEN]), 0);
    }

    #[test]
    fn corrupted_header_rejected() {
        let mut wire = sample().emit().to_vec();
        wire[8] ^= 0xFF; // mangle TTL
        assert_eq!(Ipv4Packet::parse(&wire), Err(WireError::BadChecksum));
    }

    #[test]
    fn trailing_padding_discarded() {
        let mut wire = sample().emit().to_vec();
        wire.extend_from_slice(&[0u8; 20]);
        let parsed = Ipv4Packet::parse(&wire).unwrap();
        assert_eq!(parsed.payload.len(), 5);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut wire = sample().emit().to_vec();
        wire[0] = 0x65; // version 6
                        // Checksum now wrong too, but version is checked first.
        assert_eq!(Ipv4Packet::parse(&wire), Err(WireError::Unsupported));
    }

    #[test]
    fn rejects_fragments() {
        let p = sample();
        let mut wire = p.emit().to_vec();
        wire[6] = 0x20; // MF flag
                        // Re-fix checksum.
        wire[10] = 0;
        wire[11] = 0;
        let ck = internet_checksum(&wire[..IPV4_HEADER_LEN]);
        wire[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(Ipv4Packet::parse(&wire), Err(WireError::Unsupported));
    }

    #[test]
    fn forwarded_decrements_ttl() {
        let mut p = sample();
        p.ttl = 2;
        let f = p.forwarded().unwrap();
        assert_eq!(f.ttl, 1);
        assert!(f.forwarded().is_none());
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(Ipv4Packet::parse(&[0x45u8; 10]), Err(WireError::Truncated));
    }

    #[test]
    fn bad_total_length_rejected() {
        let p = sample();
        let mut wire = p.emit().to_vec();
        // Claim a total length larger than the buffer.
        wire[2] = 0xFF;
        wire[3] = 0xFF;
        wire[10] = 0;
        wire[11] = 0;
        let ck = internet_checksum(&wire[..IPV4_HEADER_LEN]);
        wire[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(Ipv4Packet::parse(&wire), Err(WireError::BadLength));
    }
}
