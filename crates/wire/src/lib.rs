//! # rf-wire — wire formats for the emulated OpenFlow data plane
//!
//! Every packet that crosses a simulated link is a real, byte-exact
//! Ethernet frame. This crate provides parse/emit pairs for the
//! protocols the reproduction needs:
//!
//! * Ethernet II framing ([`ethernet`])
//! * ARP request/reply ([`arp`]) — hosts resolve their gateway, and the
//!   RouteFlow controller answers on behalf of the VM environment
//! * IPv4 with header checksum ([`ipv4`])
//! * UDP ([`udp`]) — carries the demo video stream and RIP
//! * ICMP echo ([`icmp`]) — the quickstart's connectivity check
//! * LLDP ([`lldp`]) — the topology-discovery probes at the heart of
//!   the paper's framework
//!
//! Parsing follows the smoltcp philosophy: explicit, allocation-light,
//! rejecting malformed input with a typed [`WireError`] instead of
//! panicking. Emission always produces canonical encodings (checksums
//! filled in), and every format has encode/decode round-trip tests plus
//! property-based fuzzing against arbitrary byte soup.

pub mod addr;
pub mod arp;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod lldp;
pub mod udp;

pub use addr::{Ipv4Cidr, MacAddr};
pub use arp::{ArpOp, ArpPacket};
pub use ethernet::{EtherType, EthernetFrame, MIN_FRAME_NO_FCS};
pub use icmp::IcmpPacket;
pub use ipv4::{IpProtocol, Ipv4Packet};
pub use lldp::{LldpPacket, LldpTlv};
pub use udp::UdpPacket;

use std::fmt;

/// Errors produced while parsing wire formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header requires.
    Truncated,
    /// A length field disagrees with the actual buffer size.
    BadLength,
    /// A checksum failed verification.
    BadChecksum,
    /// A field holds a value this implementation cannot interpret.
    Unsupported,
    /// Structurally malformed content (e.g. a TLV overrunning its frame).
    Malformed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WireError::Truncated => "truncated packet",
            WireError::BadLength => "inconsistent length field",
            WireError::BadChecksum => "checksum mismatch",
            WireError::Unsupported => "unsupported field value",
            WireError::Malformed => "malformed packet",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// Internet checksum (RFC 1071) over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    fold_checksum(accumulate_checksum(data))
}

/// Internet checksum over the logical concatenation of `parts`. Every
/// part except the last must be even-length so the 16-bit word
/// boundaries line up with the concatenated buffer — ones-complement
/// addition is associative, so the result is bit-identical to
/// checksumming one contiguous copy (this is how the UDP pseudo-header
/// check avoids materializing that copy per datagram).
pub fn internet_checksum_parts(parts: &[&[u8]]) -> u16 {
    debug_assert!(parts
        .iter()
        .rev()
        .skip(1)
        .all(|p| p.len().is_multiple_of(2)));
    fold_checksum(parts.iter().map(|p| accumulate_checksum(p)).sum())
}

/// Unfolded 16-bit-word sum of `data` (RFC 1071's inner loop).
fn accumulate_checksum(data: &[u8]) -> u32 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Fold the carries and complement (RFC 1071's final step).
fn fold_checksum(mut sum: u32) -> u16 {
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_of_zeros_is_ffff() {
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xFFFF);
    }

    #[test]
    fn checksum_rfc1071_example() {
        // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2, cksum !ddf2
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00);
    }

    #[test]
    fn checksum_verifies_to_zero_when_embedded() {
        // A buffer whose checksum field is filled must re-sum to 0.
        let mut data = vec![0x45, 0x00, 0x00, 0x14, 0x00, 0x00];
        let ck = internet_checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        let total: u32 = {
            let mut sum: u32 = 0;
            for c in data.chunks(2) {
                sum += u32::from(u16::from_be_bytes([c[0], *c.get(1).unwrap_or(&0)]));
            }
            while sum > 0xFFFF {
                sum = (sum & 0xFFFF) + (sum >> 16);
            }
            sum
        };
        assert_eq!(total, 0xFFFF);
    }
}
