//! LLDP (IEEE 802.1AB) — the probe format used by topology discovery.
//!
//! The paper's framework learns the network through the NOX topology
//! discovery module: the controller emits an LLDP frame out of every
//! switch port (PACKET_OUT); when that frame re-enters the network on a
//! neighbouring switch it is punted back (PACKET_IN), and the pair
//! `(origin dpid/port, receiving dpid/port)` identifies a link.
//!
//! We implement the standard TLV structure (chassis id, port id, TTL,
//! optional system name, organizationally specific TLVs, end marker)
//! and the discovery encoding: chassis id and port id with "locally
//! assigned" subtype 7 carrying the big-endian datapath id and port
//! number respectively.

use crate::WireError;
use bytes::{BufMut, Bytes, BytesMut};

/// Subtype value "locally assigned" shared by chassis-id and port-id TLVs.
pub const SUBTYPE_LOCAL: u8 = 7;

/// One LLDP TLV.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LldpTlv {
    End,
    ChassisId {
        subtype: u8,
        id: Bytes,
    },
    PortId {
        subtype: u8,
        id: Bytes,
    },
    Ttl(u16),
    SystemName(String),
    OrgSpecific {
        oui: [u8; 3],
        subtype: u8,
        info: Bytes,
    },
    /// Any other TLV type, preserved opaquely.
    Unknown {
        ty: u8,
        value: Bytes,
    },
}

impl LldpTlv {
    fn type_code(&self) -> u8 {
        match self {
            LldpTlv::End => 0,
            LldpTlv::ChassisId { .. } => 1,
            LldpTlv::PortId { .. } => 2,
            LldpTlv::Ttl(_) => 3,
            LldpTlv::SystemName(_) => 5,
            LldpTlv::OrgSpecific { .. } => 127,
            LldpTlv::Unknown { ty, .. } => *ty,
        }
    }

    fn value_bytes(&self) -> Bytes {
        match self {
            LldpTlv::End => Bytes::new(),
            LldpTlv::ChassisId { subtype, id } | LldpTlv::PortId { subtype, id } => {
                let mut b = BytesMut::with_capacity(1 + id.len());
                b.put_u8(*subtype);
                b.put_slice(id);
                b.freeze()
            }
            LldpTlv::Ttl(t) => Bytes::copy_from_slice(&t.to_be_bytes()),
            LldpTlv::SystemName(s) => Bytes::copy_from_slice(s.as_bytes()),
            LldpTlv::OrgSpecific { oui, subtype, info } => {
                let mut b = BytesMut::with_capacity(4 + info.len());
                b.put_slice(oui);
                b.put_u8(*subtype);
                b.put_slice(info);
                b.freeze()
            }
            LldpTlv::Unknown { value, .. } => value.clone(),
        }
    }
}

/// A full LLDPDU: a sequence of TLVs ending with `End`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LldpPacket {
    pub tlvs: Vec<LldpTlv>,
}

impl LldpPacket {
    /// Build the discovery probe for `(dpid, port)` with a TTL of 120 s.
    pub fn discovery_probe(dpid: u64, port: u16) -> LldpPacket {
        LldpPacket {
            tlvs: vec![
                LldpTlv::ChassisId {
                    subtype: SUBTYPE_LOCAL,
                    id: Bytes::copy_from_slice(&dpid.to_be_bytes()),
                },
                LldpTlv::PortId {
                    subtype: SUBTYPE_LOCAL,
                    id: Bytes::copy_from_slice(&port.to_be_bytes()),
                },
                LldpTlv::Ttl(120),
            ],
        }
    }

    /// Extract `(dpid, port)` from a discovery probe, if this LLDPDU is
    /// one (locally-assigned chassis id of 8 bytes + port id of 2).
    pub fn decode_discovery(&self) -> Option<(u64, u16)> {
        let mut dpid = None;
        let mut port = None;
        for tlv in &self.tlvs {
            match tlv {
                LldpTlv::ChassisId { subtype, id }
                    if *subtype == SUBTYPE_LOCAL && id.len() == 8 =>
                {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(id);
                    dpid = Some(u64::from_be_bytes(b));
                }
                LldpTlv::PortId { subtype, id } if *subtype == SUBTYPE_LOCAL && id.len() == 2 => {
                    port = Some(u16::from_be_bytes([id[0], id[1]]));
                }
                _ => {}
            }
        }
        Some((dpid?, port?))
    }

    /// Allocation-free equivalent of `parse(data)` followed by
    /// [`LldpPacket::decode_discovery`]: walks the TLVs in place and
    /// returns exactly what that pair would — `None` whenever `parse`
    /// would error *or* the LLDPDU is not a discovery probe. This is
    /// the per-probe hot path of topology discovery; the TLV vector
    /// only exists for callers that inspect arbitrary LLDPDUs.
    pub fn parse_discovery(data: &[u8]) -> Option<(u64, u16)> {
        let mut dpid = None;
        let mut port = None;
        let mut off = 0usize;
        loop {
            if off + 2 > data.len() {
                return None; // parse: Truncated
            }
            let hdr = u16::from_be_bytes([data[off], data[off + 1]]);
            let ty = (hdr >> 9) as u8;
            let len = (hdr & 0x1FF) as usize;
            off += 2;
            if off + len > data.len() {
                return None; // parse: Malformed
            }
            let value = &data[off..off + len];
            off += len;
            match ty {
                0 => break,
                1 => {
                    if value.is_empty() {
                        return None; // parse: Malformed
                    }
                    if value[0] == SUBTYPE_LOCAL && value.len() == 9 {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(&value[1..]);
                        dpid = Some(u64::from_be_bytes(b));
                    }
                }
                2 => {
                    if value.is_empty() {
                        return None; // parse: Malformed
                    }
                    if value[0] == SUBTYPE_LOCAL && value.len() == 3 {
                        port = Some(u16::from_be_bytes([value[1], value[2]]));
                    }
                }
                3 if value.len() < 2 => return None, // parse: Malformed
                5 if std::str::from_utf8(value).is_err() => return None, // parse: Malformed
                127 if value.len() < 4 => return None, // parse: Malformed
                _ => {}
            }
        }
        Some((dpid?, port?))
    }

    pub fn parse(data: &[u8]) -> Result<LldpPacket, WireError> {
        let mut tlvs = Vec::new();
        let mut off = 0usize;
        loop {
            if off + 2 > data.len() {
                return Err(WireError::Truncated);
            }
            let hdr = u16::from_be_bytes([data[off], data[off + 1]]);
            let ty = (hdr >> 9) as u8;
            let len = (hdr & 0x1FF) as usize;
            off += 2;
            if off + len > data.len() {
                return Err(WireError::Malformed);
            }
            let value = &data[off..off + len];
            off += len;
            let tlv = match ty {
                0 => {
                    tlvs.push(LldpTlv::End);
                    break;
                }
                1 => {
                    if value.is_empty() {
                        return Err(WireError::Malformed);
                    }
                    LldpTlv::ChassisId {
                        subtype: value[0],
                        id: Bytes::copy_from_slice(&value[1..]),
                    }
                }
                2 => {
                    if value.is_empty() {
                        return Err(WireError::Malformed);
                    }
                    LldpTlv::PortId {
                        subtype: value[0],
                        id: Bytes::copy_from_slice(&value[1..]),
                    }
                }
                3 => {
                    if value.len() < 2 {
                        return Err(WireError::Malformed);
                    }
                    LldpTlv::Ttl(u16::from_be_bytes([value[0], value[1]]))
                }
                5 => LldpTlv::SystemName(
                    String::from_utf8(value.to_vec()).map_err(|_| WireError::Malformed)?,
                ),
                127 => {
                    if value.len() < 4 {
                        return Err(WireError::Malformed);
                    }
                    LldpTlv::OrgSpecific {
                        oui: [value[0], value[1], value[2]],
                        subtype: value[3],
                        info: Bytes::copy_from_slice(&value[4..]),
                    }
                }
                other => LldpTlv::Unknown {
                    ty: other,
                    value: Bytes::copy_from_slice(value),
                },
            };
            tlvs.push(tlv);
        }
        Ok(LldpPacket { tlvs })
    }

    pub fn emit(&self) -> Bytes {
        let mut buf = BytesMut::new();
        let mut wrote_end = false;
        for tlv in &self.tlvs {
            let value = tlv.value_bytes();
            assert!(value.len() < 512, "TLV value too long");
            let hdr = ((tlv.type_code() as u16) << 9) | value.len() as u16;
            buf.put_u16(hdr);
            buf.put_slice(&value);
            if matches!(tlv, LldpTlv::End) {
                wrote_end = true;
                break;
            }
        }
        if !wrote_end {
            buf.put_u16(0);
        }
        buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_probe_roundtrip() {
        let p = LldpPacket::discovery_probe(0xDEADBEEF, 17);
        let parsed = LldpPacket::parse(&p.emit()).unwrap();
        assert_eq!(parsed.decode_discovery(), Some((0xDEADBEEF, 17)));
    }

    #[test]
    fn end_tlv_is_appended_automatically() {
        let p = LldpPacket::discovery_probe(1, 1);
        let wire = p.emit();
        // Last two bytes are the End TLV (0x0000).
        assert_eq!(&wire[wire.len() - 2..], &[0, 0]);
    }

    #[test]
    fn non_discovery_lldp_yields_none() {
        let p = LldpPacket {
            tlvs: vec![
                LldpTlv::ChassisId {
                    subtype: 4, // MAC address subtype
                    id: Bytes::from_static(&[1, 2, 3, 4, 5, 6]),
                },
                LldpTlv::PortId {
                    subtype: 1,
                    id: Bytes::from_static(b"ge-0/0/1"),
                },
                LldpTlv::Ttl(120),
            ],
        };
        let parsed = LldpPacket::parse(&p.emit()).unwrap();
        assert_eq!(parsed.decode_discovery(), None);
    }

    #[test]
    fn system_name_and_org_specific_roundtrip() {
        let p = LldpPacket {
            tlvs: vec![
                LldpTlv::ChassisId {
                    subtype: SUBTYPE_LOCAL,
                    id: Bytes::copy_from_slice(&1u64.to_be_bytes()),
                },
                LldpTlv::PortId {
                    subtype: SUBTYPE_LOCAL,
                    id: Bytes::copy_from_slice(&2u16.to_be_bytes()),
                },
                LldpTlv::Ttl(60),
                LldpTlv::SystemName("of-a".to_string()),
                LldpTlv::OrgSpecific {
                    oui: [0x00, 0x26, 0xE1],
                    subtype: 0,
                    info: Bytes::from_static(b"cookie"),
                },
            ],
        };
        let parsed = LldpPacket::parse(&p.emit()).unwrap();
        // parse appends the End it saw.
        assert_eq!(&parsed.tlvs[..5], &p.tlvs[..]);
        assert_eq!(parsed.tlvs[5], LldpTlv::End);
    }

    #[test]
    fn truncated_rejected() {
        let p = LldpPacket::discovery_probe(9, 9);
        let wire = p.emit();
        assert!(LldpPacket::parse(&wire[..wire.len() - 3]).is_err());
        assert_eq!(LldpPacket::parse(&[0x02]), Err(WireError::Truncated));
    }

    #[test]
    fn tlv_overrun_rejected() {
        // TLV claiming 100 bytes with only 2 present.
        let data = [(1u16 << 9 | 100).to_be_bytes(), [0xAA, 0xBB]].concat();
        assert_eq!(LldpPacket::parse(&data), Err(WireError::Malformed));
    }

    #[test]
    fn unknown_tlv_preserved() {
        let p = LldpPacket {
            tlvs: vec![
                LldpTlv::ChassisId {
                    subtype: SUBTYPE_LOCAL,
                    id: Bytes::copy_from_slice(&3u64.to_be_bytes()),
                },
                LldpTlv::PortId {
                    subtype: SUBTYPE_LOCAL,
                    id: Bytes::copy_from_slice(&4u16.to_be_bytes()),
                },
                LldpTlv::Ttl(30),
                LldpTlv::Unknown {
                    ty: 8, // management address, which we don't model
                    value: Bytes::from_static(&[9, 9, 9]),
                },
            ],
        };
        let parsed = LldpPacket::parse(&p.emit()).unwrap();
        assert!(parsed
            .tlvs
            .iter()
            .any(|t| matches!(t, LldpTlv::Unknown { ty: 8, .. })));
        assert_eq!(parsed.decode_discovery(), Some((3, 4)));
    }

    #[test]
    fn parse_discovery_matches_parse_plus_decode() {
        // The fused hot-path parser must agree with parse + decode on
        // probes, non-probes, and malformed input alike.
        let probe = LldpPacket::discovery_probe(0x1234_5678_9ABC_DEF0, 42).emit();
        assert_eq!(
            LldpPacket::parse_discovery(&probe),
            Some((0x1234_5678_9ABC_DEF0, 42))
        );
        let cases: Vec<Vec<u8>> = vec![
            probe.to_vec(),
            probe[..probe.len() - 1].to_vec(), // truncated
            vec![],
            vec![0xFF; 16],
            LldpPacket {
                tlvs: vec![LldpTlv::Ttl(9), LldpTlv::SystemName("x".into())],
            }
            .emit()
            .to_vec(),
        ];
        for wire in cases {
            let slow = LldpPacket::parse(&wire)
                .ok()
                .and_then(|p| p.decode_discovery());
            assert_eq!(LldpPacket::parse_discovery(&wire), slow, "{wire:02x?}");
        }
    }
}
