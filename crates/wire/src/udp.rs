//! UDP (RFC 768) with the IPv4 pseudo-header checksum.
//!
//! Carries the demo's video stream (server → remote client) and RIPv2
//! in the virtual environment.

use crate::{internet_checksum, IpProtocol, WireError};
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

pub const UDP_HEADER_LEN: usize = 8;

/// A parsed (owned) UDP datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdpPacket {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Bytes,
}

impl UdpPacket {
    pub fn new(src_port: u16, dst_port: u16, payload: Bytes) -> Self {
        UdpPacket {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Parse, verifying the checksum against the pseudo-header built
    /// from `src`/`dst` (pass the enclosing IPv4 addresses). A zero
    /// checksum means "not computed" and is accepted, per RFC 768.
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<UdpPacket, WireError> {
        let (src_port, dst_port, length) = Self::parse_header(data, src, dst)?;
        Ok(UdpPacket {
            src_port,
            dst_port,
            payload: Bytes::copy_from_slice(&data[UDP_HEADER_LEN..length]),
        })
    }

    /// [`UdpPacket::parse`] with a zero-copy payload slice of the
    /// caller's [`Bytes`]. Identical semantics, checksum included.
    pub fn parse_bytes(data: &Bytes, src: Ipv4Addr, dst: Ipv4Addr) -> Result<UdpPacket, WireError> {
        let (src_port, dst_port, length) = Self::parse_header(data, src, dst)?;
        Ok(UdpPacket {
            src_port,
            dst_port,
            payload: data.slice(UDP_HEADER_LEN..length),
        })
    }

    fn parse_header(
        data: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> Result<(u16, u16, usize), WireError> {
        if data.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let length = u16::from_be_bytes([data[4], data[5]]) as usize;
        if length < UDP_HEADER_LEN || length > data.len() {
            return Err(WireError::BadLength);
        }
        let wire_ck = u16::from_be_bytes([data[6], data[7]]);
        if wire_ck != 0 {
            // Pseudo-header words on the stack; the datagram itself is
            // checksummed in place (no concatenated copy per packet).
            let mut pseudo = [0u8; 12];
            pseudo[0..4].copy_from_slice(&src.octets());
            pseudo[4..8].copy_from_slice(&dst.octets());
            pseudo[9] = IpProtocol::UDP.0;
            pseudo[10..12].copy_from_slice(&(length as u16).to_be_bytes());
            if crate::internet_checksum_parts(&[&pseudo, &data[..length]]) != 0 {
                return Err(WireError::BadChecksum);
            }
        }
        Ok((
            u16::from_be_bytes([data[0], data[1]]),
            u16::from_be_bytes([data[2], data[3]]),
            length,
        ))
    }

    /// Serialize with the pseudo-header checksum computed from
    /// `src`/`dst`.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let length = UDP_HEADER_LEN + self.payload.len();
        assert!(length <= u16::MAX as usize, "UDP datagram too large");
        let mut pseudo = BytesMut::with_capacity(12 + length);
        pseudo.put_slice(&src.octets());
        pseudo.put_slice(&dst.octets());
        pseudo.put_u8(0);
        pseudo.put_u8(IpProtocol::UDP.0);
        pseudo.put_u16(length as u16);
        let header_start = pseudo.len();
        pseudo.put_u16(self.src_port);
        pseudo.put_u16(self.dst_port);
        pseudo.put_u16(length as u16);
        pseudo.put_u16(0);
        pseudo.put_slice(&self.payload);
        let mut ck = internet_checksum(&pseudo);
        if ck == 0 {
            ck = 0xFFFF; // 0 is reserved for "no checksum"
        }
        let mut out = pseudo.split_off(header_start);
        out[6..8].copy_from_slice(&ck.to_be_bytes());
        out.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);

    #[test]
    fn roundtrip() {
        let p = UdpPacket::new(5004, 5005, Bytes::from_static(b"video-frame"));
        let wire = p.emit(SRC, DST);
        assert_eq!(UdpPacket::parse(&wire, SRC, DST).unwrap(), p);
    }

    #[test]
    fn checksum_catches_payload_corruption() {
        let p = UdpPacket::new(1, 2, Bytes::from_static(b"payload"));
        let mut wire = p.emit(SRC, DST).to_vec();
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert_eq!(
            UdpPacket::parse(&wire, SRC, DST),
            Err(WireError::BadChecksum)
        );
    }

    #[test]
    fn checksum_binds_addresses() {
        let p = UdpPacket::new(1, 2, Bytes::from_static(b"x"));
        let wire = p.emit(SRC, DST);
        assert_eq!(
            UdpPacket::parse(&wire, SRC, Ipv4Addr::new(10, 0, 0, 9)),
            Err(WireError::BadChecksum)
        );
    }

    #[test]
    fn zero_checksum_accepted() {
        let p = UdpPacket::new(7, 8, Bytes::from_static(b"nochk"));
        let mut wire = p.emit(SRC, DST).to_vec();
        wire[6] = 0;
        wire[7] = 0;
        assert_eq!(UdpPacket::parse(&wire, SRC, DST).unwrap(), p);
    }

    #[test]
    fn trailing_padding_ignored() {
        let p = UdpPacket::new(68, 67, Bytes::from_static(b"dhcp?"));
        let mut wire = p.emit(SRC, DST).to_vec();
        wire.extend_from_slice(&[0u8; 11]);
        assert_eq!(UdpPacket::parse(&wire, SRC, DST).unwrap(), p);
    }

    #[test]
    fn truncated_and_bad_length() {
        assert_eq!(
            UdpPacket::parse(&[0u8; 7], SRC, DST),
            Err(WireError::Truncated)
        );
        let p = UdpPacket::new(1, 2, Bytes::from_static(b"abc"));
        let mut wire = p.emit(SRC, DST).to_vec();
        wire[4] = 0xFF; // absurd length
        wire[5] = 0xFF;
        assert_eq!(UdpPacket::parse(&wire, SRC, DST), Err(WireError::BadLength));
    }

    #[test]
    fn empty_payload_roundtrips() {
        let p = UdpPacket::new(9999, 1, Bytes::new());
        let wire = p.emit(SRC, DST);
        assert_eq!(wire.len(), UDP_HEADER_LEN);
        assert_eq!(UdpPacket::parse(&wire, SRC, DST).unwrap(), p);
    }
}
