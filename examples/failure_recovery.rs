//! Beyond the paper: kill a transit switch after the network is up and
//! watch the framework heal — discovery notices the dead switch, OSPF
//! routes around it, and RouteFlow reprograms the data plane. The
//! whole experiment is one builder chain: topology, workload, fault.
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

use routeflow_autoconf::prelude::*;
use std::time::Duration;

fn main() {
    // Ring of 5: two disjoint paths between any pair of switches. The
    // ping workload crosses the short arc through switch 1; the fault
    // kills that switch at t = 60 s, well after convergence.
    let mut sc = Scenario::on(ring(5))
        .fast_timers()
        .with_workload(Workload::ping(0, 2))
        .with_fault(Fault::KillSwitch {
            node: 1,
            at: Duration::from_secs(60),
        })
        .start();

    sc.run_until(Time::from_secs(180));

    let reports = sc.workload_reports();
    let WorkloadReport::Ping(probe) = &reports[0] else {
        unreachable!("ping workload");
    };
    let (first_reply_at, rtts) = (&probe.first_reply_at, &probe.rtts);
    println!("ping timeline (1 ping per second):");
    let mut last_seq: i64 = -1;
    let mut outage: u64 = 0;
    for &(seq, rtt) in rtts {
        if i64::from(seq) != last_seq + 1 {
            let lost = i64::from(seq) - last_seq - 1;
            outage += lost as u64;
            println!(
                "  ... {lost} pings lost (seq {} to {})",
                last_seq + 1,
                seq - 1
            );
        }
        last_seq = i64::from(seq);
        let _ = rtt;
    }
    println!("\nreplies received: {}", rtts.len());
    println!("pings lost to the failure + reconvergence: {outage}");
    println!(
        "first reply after cold start: {:?}",
        first_reply_at.expect("network converged")
    );
    assert!(
        rtts.iter().any(|(seq, _)| *seq > 70),
        "pings must flow again after the failure"
    );
    println!("the ring healed: traffic flows around the dead switch.");
}
