//! Beyond the paper: kill a transit switch after the network is up and
//! watch the framework heal — discovery notices the dead switch, OSPF
//! routes around it, and RouteFlow reprograms the data plane.
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

use rf_apps::Pinger;
use rf_sim::{Agent, LinkProfile};
use routeflow_autoconf::prelude::*;
use std::time::Duration;

struct Killer {
    victim: rf_sim::AgentId,
    at: Duration,
}
impl Agent for Killer {
    fn on_start(&mut self, ctx: &mut rf_sim::Ctx<'_>) {
        ctx.schedule(self.at, 0);
    }
    fn on_timer(&mut self, ctx: &mut rf_sim::Ctx<'_>, _t: u64) {
        ctx.trace("chaos.kill", "transit switch going down");
        ctx.kill(self.victim);
    }
}

fn main() {
    // Ring of 5: two disjoint paths between any pair of switches.
    let mut cfg = DeploymentConfig::new(ring(5))
        .with_host(0, "10.1.0.0/24")
        .with_host(2, "10.2.0.0/24");
    cfg.ospf_hello = 1;
    cfg.ospf_dead = 4;
    cfg.probe_interval = Duration::from_millis(500);
    let mut dep = Deployment::build(cfg);
    let a = dep.host_slots[0].clone();
    let b = dep.host_slots[1].clone();
    let echo = dep.sim.add_agent(
        "echo-host",
        Box::new(EchoHost::new(HostConfig {
            mac: MacAddr([2, 0xCC, 0, 0, 0, 1]),
            addr: Ipv4Cidr::new(b.host_ip, b.subnet.prefix_len),
            gateway: b.gateway,
        })),
    );
    let pinger = dep.sim.add_agent(
        "pinger",
        Box::new(Pinger::new(
            HostConfig {
                mac: MacAddr([2, 0xDD, 0, 0, 0, 1]),
                addr: Ipv4Cidr::new(a.host_ip, a.subnet.prefix_len),
                gateway: a.gateway,
            },
            b.host_ip,
        )),
    );
    dep.sim
        .add_link((a.switch, u32::from(a.port)), (pinger, 1), LinkProfile::default());
    dep.sim
        .add_link((b.switch, u32::from(b.port)), (echo, 1), LinkProfile::default());

    // Kill switch 1 (on the short arc between host switches 0 and 2)
    // at t = 60 s, well after convergence.
    let victim = dep.switches[1];
    dep.sim.add_agent(
        "chaos",
        Box::new(Killer {
            victim,
            at: Duration::from_secs(60),
        }),
    );

    dep.sim.run_until(Time::from_secs(180));

    let p = dep.sim.agent_as::<Pinger>(pinger).unwrap();
    println!("ping timeline (1 ping per second):");
    let mut last_seq: i64 = -1;
    let mut outage: u64 = 0;
    for &(seq, rtt) in &p.rtts {
        if i64::from(seq) != last_seq + 1 {
            let lost = i64::from(seq) - last_seq - 1;
            outage += lost as u64;
            println!("  ... {lost} pings lost (seq {} to {})", last_seq + 1, seq - 1);
        }
        last_seq = i64::from(seq);
        let _ = rtt;
    }
    println!("\nreplies received: {}", p.rtts.len());
    println!("pings lost to the failure + reconvergence: {outage}");
    println!(
        "first reply after cold start: {:?}",
        p.first_reply_at.expect("network converged")
    );
    assert!(
        p.rtts.iter().any(|(seq, _)| *seq > 70),
        "pings must flow again after the failure"
    );
    println!("the ring healed: traffic flows around the dead switch.");
}
