//! FlowVisor in isolation: two slice controllers sharing one switch,
//! with flowspace enforcement visible — the topology controller's
//! over-broad FLOW_MOD is narrowed to LLDP, and its attempt to touch
//! IPv4 is rejected with EPERM.
//!
//! ```sh
//! cargo run --release --example flowvisor_slicing
//! ```

use rf_flowvisor::{FlowVisor, FlowVisorConfig, SlicePolicy};
use rf_openflow::{
    Action, FlowModCommand, MessageReader, OfMatch, OfMessage, OFPP_NONE, OFP_NO_BUFFER,
};
use rf_sim::{Agent, ConnId, Ctx, Sim, SimConfig, StreamEvent, Time};
use rf_switch::{OpenFlowSwitch, SwitchConfig};
use std::net::Ipv4Addr;
use std::time::Duration;

/// A controller that tries to install one in-space and one out-of-space
/// flow and records what comes back.
#[derive(Clone)]
struct Greedy {
    service: u16,
    conn: Option<ConnId>,
    reader: MessageReader,
    pub errors: u32,
}

impl Agent for Greedy {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.service);
        ctx.schedule(Duration::from_secs(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        let Some(conn) = self.conn else { return };
        let mk = |m: OfMatch| OfMessage::FlowMod {
            of_match: m,
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 10,
            buffer_id: OFP_NO_BUFFER,
            out_port: OFPP_NONE,
            flags: 0,
            actions: vec![Action::Output {
                port: rf_openflow::OFPP_CONTROLLER,
                max_len: 0xFFFF,
            }],
        };
        // Within flowspace after narrowing: match-any → becomes LLDP.
        ctx.conn_send(conn, mk(OfMatch::any()).encode(1));
        // Outside flowspace: denied.
        ctx.conn_send(
            conn,
            mk(OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8)).encode(2),
        );
    }
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, ev: StreamEvent) {
        match ev {
            StreamEvent::Opened { .. } => {
                self.conn = Some(conn);
                ctx.conn_send(conn, OfMessage::Hello.encode(0));
            }
            StreamEvent::Data(d) => {
                self.reader.push(&d);
                while let Some(Ok((m, xid))) = self.reader.next() {
                    if let OfMessage::Error { err_type, code, .. } = m {
                        println!("controller got ERROR {err_type:?} code {code} (xid {xid})");
                        self.errors += 1;
                    }
                }
            }
            StreamEvent::Closed => self.conn = None,
        }
    }
}

/// Passive controller for the second slice.
#[derive(Clone)]
struct Passive {
    service: u16,
}
impl Agent for Passive {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.service);
    }
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, ev: StreamEvent) {
        if let StreamEvent::Opened { .. } = ev {
            ctx.conn_send(conn, OfMessage::Hello.encode(0));
        }
    }
}

fn main() {
    let mut sim = Sim::new(SimConfig::default());
    let greedy = sim.add_agent(
        "lldp-slice-controller",
        Box::new(Greedy {
            service: 7001,
            conn: None,
            reader: MessageReader::new(),
            errors: 0,
        }),
    );
    let passive = sim.add_agent("ip-slice-controller", Box::new(Passive { service: 7002 }));
    let fv = sim.add_agent(
        "flowvisor",
        Box::new(FlowVisor::new(FlowVisorConfig::new(vec![
            SlicePolicy::lldp_slice("topology", greedy, 7001),
            SlicePolicy::ip_slice("routeflow", passive, 7002),
        ]))),
    );
    let sw = sim.add_agent(
        "switch",
        Box::new(OpenFlowSwitch::new(SwitchConfig::new(0x1C, 4, fv))),
    );
    // A port so the switch has a data plane (unused here).
    let sink = sim.add_agent("sink", Box::new(Passive { service: 9 }));
    sim.add_link((sw, 1), (sink, 1), rf_sim::LinkProfile::default());

    sim.run_until(Time::from_secs(3));

    let s = sim.agent_as::<OpenFlowSwitch>(sw).unwrap();
    println!("\nswitch flow table after the greedy controller's two FLOW_MODs:");
    for e in s.flow_table().entries() {
        println!(
            "  priority {} dl_type {:#06x} wildcards {:?}",
            e.priority, e.of_match.dl_type, e.of_match.wildcards
        );
    }
    assert_eq!(s.flow_count(), 1, "only the narrowed LLDP rule lands");
    assert_eq!(s.flow_table().entries()[0].of_match, OfMatch::lldp());
    let f = sim.agent_as::<FlowVisor>(fv).unwrap();
    println!(
        "\nflowvisor: {} FLOW_MOD rewritten, {} denied",
        f.rewritten_flow_mods, f.denied_flow_mods
    );
    let g = sim.agent_as::<Greedy>(greedy).unwrap();
    assert_eq!(g.errors, 1, "exactly one EPERM");
    println!("slicing enforced: match-any narrowed to LLDP, IPv4 FLOW_MOD rejected.");
}
