//! Fig. 3 in miniature: print automatic vs. manual configuration time
//! for a few ring sizes (the full sweep lives in
//! `cargo run -p rf-bench --bin fig3_config_time`).
//!
//! ```sh
//! cargo run --release --example manual_vs_auto
//! ```

use routeflow_autoconf::prelude::*;

fn main() {
    let manual = ManualConfigModel::default();
    println!(
        "{:>10} {:>16} {:>14} {:>10}",
        "switches", "automatic (s)", "manual (min)", "speedup"
    );
    for n in [4usize, 8, 16, 28] {
        let mut sc = Scenario::on(ring(n)).start();
        let done = sc
            .run_until_configured(Time::from_secs(1800))
            .expect("must configure");
        let auto_s = done.as_secs_f64();
        let manual_s = manual.total(n).as_secs_f64();
        println!(
            "{n:>10} {auto_s:>16.1} {:>14.0} {:>9.0}x",
            manual_s / 60.0,
            manual_s / auto_s
        );
    }
    println!(
        "\nmanual model (paper §2.1): {}s VM + {}s mapping + {}s routing per switch",
        manual.vm_creation.as_secs(),
        manual.interface_mapping.as_secs(),
        manual.routing_config.as_secs()
    );
}
