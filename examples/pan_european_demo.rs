//! The paper's §3 demonstration, faithfully: the 28-node pan-European
//! topology, a video server and a remote client, a cold start, and the
//! red/green GUI. With default Quagga timers the video reaches the
//! client well inside the paper's 4-minute bound.
//!
//! ```sh
//! cargo run --release --example pan_european_demo
//! ```

use rf_apps::video::{VideoClient, VideoServer};
use rf_core::rfcontroller::RfController;
use rf_sim::LinkProfile;
use routeflow_autoconf::prelude::*;

fn main() {
    let topo = pan_european();
    let (server_node, client_node) = topo.farthest_pair().unwrap();
    println!(
        "video server in {}, client in {} ({} hops apart)\n",
        topo.node(server_node).name,
        topo.node(client_node).name,
        topo.bfs_distances(server_node)[client_node],
    );

    let cfg = DeploymentConfig::new(topo.clone())
        .with_host(server_node, "10.1.0.0/24")
        .with_host(client_node, "10.2.0.0/24");
    let mut dep = Deployment::build(cfg);
    let s = dep.host_slots[0].clone();
    let c = dep.host_slots[1].clone();
    let _server = dep.sim.add_agent(
        "video-server",
        Box::new(VideoServer::new(HostConfig {
            mac: MacAddr([2, 0xAA, 0, 0, 0, 1]),
            addr: Ipv4Cidr::new(s.host_ip, s.subnet.prefix_len),
            gateway: s.gateway,
        })),
    );
    let client = dep.sim.add_agent(
        "video-client",
        Box::new(VideoClient::new(
            HostConfig {
                mac: MacAddr([2, 0xBB, 0, 0, 0, 1]),
                addr: Ipv4Cidr::new(c.host_ip, c.subnet.prefix_len),
                gateway: c.gateway,
            },
            s.host_ip,
        )),
    );
    dep.sim.add_link(
        (s.switch, u32::from(s.port)),
        (_server, 1),
        LinkProfile::default(),
    );
    dep.sim.add_link(
        (c.switch, u32::from(c.port)),
        (client, 1),
        LinkProfile::default(),
    );

    // Drive the simulation in 20-second slices, rendering the GUI after
    // each (the paper shows switches flipping red → green live).
    let mut view = NetworkView::new(topo);
    view.use_ansi = std::env::var("NO_COLOR").is_err();
    for slice in 1..=12u64 {
        let t = Time::from_secs(slice * 20);
        dep.sim.run_until(t);
        let states = dep
            .sim
            .agent_as::<RfController>(dep.rf_ctrl)
            .unwrap()
            .switch_states();
        view.update(&states);
        view.log(t.to_string(), format!("{} switches green", view.green_count()));
        println!("t = {t}");
        println!("{}", view.render(90, 24));
        let report = dep.sim.agent_as::<VideoClient>(client).unwrap().report;
        if let Some(fb) = report.first_byte_at {
            println!("*** video reached the client at t = {fb} ***\n");
            if report.playback_at.is_some() {
                break;
            }
        }
    }
    let report = dep.sim.agent_as::<VideoClient>(client).unwrap().report;
    println!("\nfinal report:");
    println!("  configured (all green): {:?}", dep.all_configured_at());
    println!("  first video byte:       {:?}", report.first_byte_at);
    println!("  playback start:         {:?}", report.playback_at);
    println!("  packets / gaps:         {} / {}", report.packets, report.gaps);
    let ok = report
        .first_byte_at
        .map(|t| t < Time::from_secs(240))
        .unwrap_or(false);
    println!(
        "  within the paper's 4-minute bound: {}",
        if ok { "YES" } else { "NO" }
    );
}
