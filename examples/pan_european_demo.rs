//! The paper's §3 demonstration, faithfully: the 28-node pan-European
//! topology, a video server and a remote client, a cold start, and the
//! red/green GUI. With default Quagga timers the video reaches the
//! client well inside the paper's 4-minute bound.
//!
//! ```sh
//! cargo run --release --example pan_european_demo
//! ```

use routeflow_autoconf::prelude::*;

fn main() {
    let topo = pan_european();
    let (server_node, client_node) = topo.farthest_pair().unwrap();
    println!(
        "video server in {}, client in {} ({} hops apart)\n",
        topo.node(server_node).name,
        topo.node(client_node).name,
        topo.bfs_distances(server_node)[client_node],
    );

    let mut sc = Scenario::on(topo.clone())
        .with_workload(Workload::video(server_node, client_node))
        .start();

    // Drive the simulation in 20-second slices, rendering the GUI after
    // each (the paper shows switches flipping red → green live).
    let mut view = NetworkView::new(topo);
    view.use_ansi = std::env::var("NO_COLOR").is_err();
    for slice in 1..=12u64 {
        let t = Time::from_secs(slice * 20);
        sc.run_until(t);
        view.update(&sc.controller().switch_states());
        view.log(
            t.to_string(),
            format!("{} switches green", view.green_count()),
        );
        println!("t = {t}");
        println!("{}", view.render(90, 24));
        let reports = sc.workload_reports();
        let WorkloadReport::Video(report) = &reports[0] else {
            unreachable!("video workload");
        };
        if let Some(fb) = report.first_byte_at {
            println!("*** video reached the client at t = {fb} ***\n");
            if report.playback_at.is_some() {
                break;
            }
        }
    }
    let reports = sc.workload_reports();
    let WorkloadReport::Video(report) = &reports[0] else {
        unreachable!("video workload");
    };
    println!("\nfinal report:");
    println!("  configured (all green): {:?}", sc.all_configured_at());
    println!("  first video byte:       {:?}", report.first_byte_at);
    println!("  playback start:         {:?}", report.playback_at);
    println!(
        "  packets / gaps:         {} / {}",
        report.packets, report.gaps
    );
    let ok = report
        .first_byte_at
        .map(|t| t < Time::from_secs(240))
        .unwrap_or(false);
    println!(
        "  within the paper's 4-minute bound: {}",
        if ok { "YES" } else { "NO" }
    );
}
