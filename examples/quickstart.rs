//! Quickstart: auto-configure a 4-switch ring and ping across it,
//! using the composable scenario API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use routeflow_autoconf::prelude::*;

fn main() {
    // 1. A physical topology: four OpenFlow switches in a ring, with a
    //    ping workload between hosts on opposite sides (the builder
    //    attaches both endpoints and their subnets). Snappy timers so
    //    the quickstart finishes in seconds of simulated time (the
    //    defaults are Quagga's 10 s hello / 40 s dead).
    let mut sc = Scenario::on(ring(4))
        .fast_timers()
        .with_workload(Workload::ping(0, 2))
        .start();

    // 2. Cold start. No VM exists, no flow is installed, the pinger
    //    starts pinging into the void.
    sc.run_until(Time::from_secs(60));

    let metrics = sc.finish();
    let configured = metrics.all_configured_at.expect("configuration completes");
    println!("all 4 switches configured (green) at t = {configured}");
    println!(
        "controller pushed {} flows ({} resident in the data plane)",
        metrics.flows_installed, metrics.dataplane_flows
    );

    let reports = sc.workload_reports();
    let WorkloadReport::Ping(probe) = &reports[0] else {
        unreachable!("ping workload");
    };
    let (first_reply_at, rtts) = (&probe.first_reply_at, &probe.rtts);
    let first = first_reply_at.expect("ping succeeds once routed");
    println!("first successful ping at        t = {first}");
    let (seq, rtt) = rtts.last().unwrap();
    println!("steady-state rtt (seq {seq}):          {rtt:?}");
    println!(
        "\ntimeline: {} pings sent before the network came up, then {} round trips completed",
        seq + 1 - rtts.len() as u16,
        rtts.len()
    );
}
