//! Quickstart: auto-configure a 4-switch ring and ping across it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rf_sim::LinkProfile;
use routeflow_autoconf::prelude::*;
use std::time::Duration;

fn main() {
    // 1. A physical topology: four OpenFlow switches in a ring, a host
    //    on switch 0 and another on switch 2 (opposite side).
    let mut cfg = DeploymentConfig::new(ring(4))
        .with_host(0, "10.1.0.0/24")
        .with_host(2, "10.2.0.0/24");
    // Snappy timers so the quickstart finishes in seconds of simulated
    // time (the defaults are Quagga's 10 s hello / 40 s dead).
    cfg.ospf_hello = 1;
    cfg.ospf_dead = 4;
    cfg.probe_interval = Duration::from_millis(500);

    // 2. Build the paper's Fig. 2 stack: switches → FlowVisor →
    //    {topology controller, RF-controller}, RPC client in between.
    let mut dep = Deployment::build(cfg);

    // 3. Attach the two hosts.
    let a = dep.host_slots[0].clone();
    let b = dep.host_slots[1].clone();
    let echo = dep.sim.add_agent(
        "echo-host",
        Box::new(EchoHost::new(HostConfig {
            mac: MacAddr([2, 0xCC, 0, 0, 0, 1]),
            addr: Ipv4Cidr::new(b.host_ip, b.subnet.prefix_len),
            gateway: b.gateway,
        })),
    );
    let pinger = dep.sim.add_agent(
        "pinger",
        Box::new(Pinger::new(
            HostConfig {
                mac: MacAddr([2, 0xDD, 0, 0, 0, 1]),
                addr: Ipv4Cidr::new(a.host_ip, a.subnet.prefix_len),
                gateway: a.gateway,
            },
            b.host_ip,
        )),
    );
    dep.sim
        .add_link((a.switch, u32::from(a.port)), (pinger, 1), LinkProfile::default());
    dep.sim
        .add_link((b.switch, u32::from(b.port)), (echo, 1), LinkProfile::default());

    // 4. Cold start. No VM exists, no flow is installed, the pinger
    //    starts pinging into the void.
    dep.sim.run_until(Time::from_secs(60));

    let configured = dep.all_configured_at().expect("configuration completes");
    println!("all 4 switches configured (green) at t = {configured}");
    let p = dep.sim.agent_as::<Pinger>(pinger).unwrap();
    let first = p.first_reply_at.expect("ping succeeds once routed");
    println!("first successful ping at        t = {first}");
    let (seq, rtt) = p.rtts.last().unwrap();
    println!("steady-state rtt (seq {seq}):          {rtt:?}");
    println!(
        "\ntimeline: {} pings sent before the network came up, then {} round trips completed",
        seq + 1 - p.rtts.len() as u16,
        p.rtts.len()
    );
}
