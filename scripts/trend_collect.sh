#!/usr/bin/env bash
# trend_collect.sh — fold matrix_sweep reports into the committed
# medians-over-time table (crates/bench/baselines/trend.md).
#
# Usage:
#   scripts/trend_collect.sh append TREND_MD REPORT_JSON LABEL [PERF_JSON] [CORPUS_JSON] [CHAOS_JSON]
#       Append one row for REPORT_JSON under LABEL (idempotent: a row
#       whose label already exists is skipped). When PERF_JSON (a
#       BENCH_perf.json from perf_sweep) is given, the wall-clock
#       cells/sec of its full (falling back to smoke) grid fills that
#       column, fork_speedup carries the same grid's checkpoint/fork
#       wall ratio (perf schema v2, `fork.speedup_x1000`, printed as a
#       decimal), and parallel_speedup the intra-scenario
#       parallel-kernel probe ratio (perf schema v3,
#       `parallel.speedup_x1000`; "-" when the probe was skipped, e.g.
#       on a sub-4-core host); when CORPUS_JSON (a `matrix_sweep --corpus` report) is
#       given, the trailing columns carry the corpus breadth (distinct
#       topologies) and the median across per-topology configuration
#       medians; when CHAOS_JSON (a `chaos_sweep` campaign report) is
#       given, chaos_schedules carries the campaign's cell count and
#       chaos_violations the total invariant violations across them
#       (0 on a green campaign). Absent inputs read "-".
#   scripts/trend_collect.sh fetch TREND_MD [LIMIT]
#       In CI: download up to LIMIT (default 12) prior sweep-full
#       artifacts via `gh`, append a row per report (oldest first),
#       labelled by the commit that produced it. Requires GH_TOKEN and
#       GH_REPO; degrades to a no-op outside CI.
#
# The table tracks the summary *median* of a fixed metric set — the
# first cut of the ROADMAP "plot medians over time" dashboard. Times
# are nanoseconds of simulated time; the trailing wall_cells_per_sec
# column is wall-clock (machine-dependent), from BENCH_perf.json.
set -euo pipefail

# traffic_* columns arrived with report schema v4 (the stochastic
# traffic engine); rows collected before then carry "-" there.
METRICS=(all_configured_ns recovery_ns ping_replies of_bytes_sent of_pushes of_deferred of_queue_hwm dataplane_flows traffic_offered_bytes traffic_delivered_bytes traffic_fct_p95_ns)

header() {
    local md=$1
    if [ ! -s "$md" ]; then
        {
            printf '# sweep-full trend — summary medians per run\n\n'
            printf 'Appended by `scripts/trend_collect.sh` (see `.github/workflows/sweep-full.yml`).\n'
            printf 'Times are nanoseconds of simulated time; `-` means the metric was absent.\n\n'
            printf '| run | cells |'
            printf ' %s |' "${METRICS[@]}"
            printf ' wall_cells_per_sec | fork_speedup | parallel_speedup | corpus_topos | corpus_config_median_ns | chaos_schedules | chaos_violations |'
            printf '\n|---|---|'
            printf '%s' "$(printf -- '---|%.0s' "${METRICS[@]}")"
            printf -- '---|---|---|---|---|---|---|'
            printf '\n'
        } >"$md"
    fi
}

row_for() {
    local report=$1 label=$2 perf=$3 corpus=$4 chaos=$5
    python3 - "$report" "$label" "$perf" "$corpus" "$chaos" "${METRICS[@]}" <<'PY'
import json, sys
report, label, perf, corpus, chaos, metrics = (
    sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4], sys.argv[5], sys.argv[6:])
with open(report) as f:
    doc = json.load(f)
cells = doc.get("cells", [])
summary = doc.get("summary", {})
cols = [label, str(len(cells))]
for m in metrics:
    s = summary.get(m)
    cols.append(str(s["median"]) if s else "-")
cps, fork_speedup, parallel_speedup = "-", "-", "-"
if perf:
    try:
        with open(perf) as f:
            grids = json.load(f).get("grids", {})
        grid = grids.get("full") or grids.get("smoke") or {}
        cps = str(grid.get("single_thread", {}).get("cells_per_sec", "-"))
        # Perf schema v2: the checkpoint/fork wall ratio of the same
        # grid, stored x1000, printed as a decimal ("1.29").
        x1000 = grid.get("fork", {}).get("speedup_x1000")
        if x1000 is not None:
            fork_speedup = f"{x1000 / 1000:.2f}"
        # Perf schema v3: the intra-scenario parallel-kernel probe
        # ratio (serial wall / 4-core wall on the grid's costliest
        # fault-free cell). Absent when the probe was skipped — e.g.
        # the runner had fewer than 4 cores.
        x1000 = grid.get("parallel", {}).get("speedup_x1000")
        if x1000 is not None:
            parallel_speedup = f"{x1000 / 1000:.2f}"
    except (OSError, ValueError):
        pass  # missing or malformed perf file: leave the column "-"
cols += [cps, fork_speedup, parallel_speedup]
# Corpus breadth columns: distinct topologies in the corpus report and
# the median across per-topology configuration medians (lower median
# throughout, matching MatrixReport::per_topology_medians).
topos, corpus_median = "-", "-"
if corpus:
    try:
        with open(corpus) as f:
            ccells = json.load(f).get("cells", [])
        by_topo = {}
        for c in ccells:
            key = c.get("key", "")
            if not key.startswith("topo="):
                continue
            topo = key[len("topo="):].split("/", 1)[0]
            v = c.get("metrics", {}).get("all_configured_ns")
            if v is not None:
                by_topo.setdefault(topo, []).append(v)
        if by_topo:
            meds = sorted(sorted(vs)[(len(vs) - 1) // 2] for vs in by_topo.values())
            topos = str(len(by_topo))
            corpus_median = str(meds[(len(meds) - 1) // 2])
    except (OSError, ValueError):
        pass  # missing or malformed corpus report: leave "-"
cols += [topos, corpus_median]
# Chaos campaign columns: schedule (cell) count and total invariant
# violations from a chaos_sweep report — 0 means the campaign was
# green; the per-cell metric is `chaos_violations` (report schema v4).
chaos_schedules, chaos_violations = "-", "-"
if chaos:
    try:
        with open(chaos) as f:
            hcells = json.load(f).get("cells", [])
        chaos_schedules = str(len(hcells))
        chaos_violations = str(sum(
            c.get("metrics", {}).get("chaos_violations", 0) for c in hcells))
    except (OSError, ValueError):
        pass  # missing or malformed chaos report: leave "-"
cols += [chaos_schedules, chaos_violations]
print("| " + " | ".join(cols) + " |")
PY
}

append_row() {
    local md=$1 report=$2 label=$3 perf=${4:-} corpus=${5:-} chaos=${6:-}
    header "$md"
    if grep -q "^| ${label} |" "$md"; then
        echo "trend: row '${label}' already present, skipping" >&2
        return 0
    fi
    row_for "$report" "$label" "$perf" "$corpus" "$chaos" >>"$md"
    echo "trend: appended '${label}' from ${report}" >&2
}

case "${1:-}" in
append)
    [ $# -ge 4 ] && [ $# -le 7 ] || {
        echo "usage: $0 append TREND_MD REPORT_JSON LABEL [PERF_JSON] [CORPUS_JSON] [CHAOS_JSON]" >&2
        exit 2
    }
    append_row "$2" "$3" "$4" "${5:-}" "${6:-}" "${7:-}"
    ;;
fetch)
    [ $# -ge 2 ] || { echo "usage: $0 fetch TREND_MD [LIMIT]" >&2; exit 2; }
    md=$2
    limit=${3:-12}
    if ! command -v gh >/dev/null; then
        echo "trend: gh CLI not available, skipping artifact fetch" >&2
        exit 0
    fi
    header "$md"
    # Oldest first, so the table reads chronologically.
    gh run list --workflow sweep-full --status success --limit "$limit" \
        --json databaseId,headSha --jq 'reverse | .[] | "\(.databaseId) \(.headSha)"' |
        while read -r run_id sha; do
            dir=$(mktemp -d)
            if gh run download "$run_id" --name "sweep-full-report-${sha}" --dir "$dir" 2>/dev/null ||
                gh run download "$run_id" --pattern 'sweep-full-report-*' --dir "$dir" 2>/dev/null; then
                report=$(find "$dir" -name 'sweep-full.json' | head -1)
                if [ -n "$report" ]; then
                    append_row "$md" "$report" "${sha:0:7}" || true
                fi
            else
                echo "trend: no artifact for run ${run_id}, skipping" >&2
            fi
            rm -rf "$dir"
        done
    ;;
*)
    echo "usage: $0 {append TREND_MD REPORT_JSON LABEL [PERF_JSON] [CORPUS_JSON] [CHAOS_JSON] | fetch TREND_MD [LIMIT]}" >&2
    exit 2
    ;;
esac
