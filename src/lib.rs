//! # routeflow-autoconf
//!
//! A full reproduction of **"Automatic Configuration of Routing Control
//! Platforms in OpenFlow Networks"** (Sharma, Staessens, Colle,
//! Pickavet, Demeester — SIGCOMM 2013 demo) as a Rust workspace, built
//! on a deterministic discrete-event network simulator.
//!
//! This facade crate re-exports the public API of every member crate;
//! see `README.md` for the architecture tour, `DESIGN.md` for the
//! system inventory and substitutions, and `EXPERIMENTS.md` for the
//! paper-vs-measured results.
//!
//! ## The ninety-second tour
//!
//! ```
//! use routeflow_autoconf::prelude::*;
//! use std::time::Duration;
//!
//! // The Fig. 2 stack on a 4-switch ring, OSPF timers sped up so the
//! // doctest stays fast.
//! let mut cfg = DeploymentConfig::new(ring(4));
//! cfg.ospf_hello = 1;
//! cfg.ospf_dead = 4;
//! cfg.probe_interval = Duration::from_millis(500);
//! let mut dep = Deployment::build(cfg);
//!
//! // Run: discovery finds switches and links, the RPC path creates
//! // VMs, writes Quagga configs, OSPF converges, flows appear.
//! let done = dep.run_until_configured(Time::from_secs(120)).unwrap();
//! assert_eq!(dep.configured_switches(), 4);
//! assert!(done < Time::from_secs(60));
//! ```

pub use rf_apps as apps;
pub use rf_core as core;
pub use rf_discovery as discovery;
pub use rf_flowvisor as flowvisor;
pub use rf_gui as gui;
pub use rf_openflow as openflow;
pub use rf_routed as routed;
pub use rf_rpc as rpc;
pub use rf_sim as sim;
pub use rf_switch as switch;
pub use rf_topo as topo;
pub use rf_vnet as vnet;
pub use rf_wire as wire;

/// The names most programs need.
pub mod prelude {
    pub use rf_apps::{EchoHost, HostConfig, Pinger, VideoClient, VideoServer};
    pub use rf_core::bootstrap::{Deployment, DeploymentConfig, HostAttachment};
    pub use rf_core::manual::ManualConfigModel;
    pub use rf_core::rfcontroller::RfController;
    pub use rf_gui::NetworkView;
    pub use rf_sim::{LinkProfile, Sim, SimConfig, Time};
    pub use rf_topo::{line, pan_european, ring, Topology};
    pub use rf_wire::{Ipv4Cidr, MacAddr};
}
