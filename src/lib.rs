//! # routeflow-autoconf
//!
//! A full reproduction of **"Automatic Configuration of Routing Control
//! Platforms in OpenFlow Networks"** (Sharma, Staessens, Colle,
//! Pickavet, Demeester — SIGCOMM 2013 demo) as a Rust workspace, built
//! on a deterministic discrete-event network simulator.
//!
//! This facade crate re-exports the public API of every member crate;
//! see `README.md` for the architecture tour. The API has two layers:
//!
//! * **Controller side** — the [`core::apps`] event pipeline: a
//!   [`ControlPlane`](core::apps::ControlPlane) engine publishes typed
//!   [`ControlEvent`](core::apps::ControlEvent)s to pluggable
//!   [`ControlApp`](core::apps::ControlApp)s (discovery bridge, VM
//!   lifecycle, FIB mirror, ARP proxy — plus yours).
//! * **Experiment side** — the fluent
//!   [`ScenarioBuilder`](core::scenario::ScenarioBuilder): topology in,
//!   hosts/workloads/faults/apps composed on top, typed metrics out.
//!
//! ## The ninety-second tour
//!
//! ```
//! use routeflow_autoconf::prelude::*;
//!
//! // The Fig. 2 stack on a 4-switch ring with a ping workload across
//! // it, OSPF timers sped up so the doctest stays fast.
//! let mut sc = Scenario::on(ring(4))
//!     .fast_timers()
//!     .with_workload(Workload::ping(0, 2))
//!     .start();
//!
//! // Run: discovery finds switches and links, the RPC path creates
//! // VMs, writes Quagga configs, OSPF converges, flows appear.
//! let done = sc.run_until_configured(Time::from_secs(120)).unwrap();
//! assert!(done < Time::from_secs(60));
//!
//! let metrics = sc.finish();
//! assert_eq!(metrics.configured_switches, 4);
//! assert!(metrics.flows_installed > 0);
//!
//! // Programmatic configuration: build the parameter struct directly
//! // (formerly `DeploymentConfig`) and hand it to the builder.
//! let mut cfg = ScenarioConfig::new(ring(4));
//! cfg.ospf_hello = 1;
//! cfg.ospf_dead = 4;
//! let mut sc = ScenarioBuilder::from_config(cfg).start();
//! sc.run_until(Time::from_secs(1));
//! assert_eq!(sc.configured_switches(), 0); // nothing green this early
//! ```
//!
//! Parameter sweeps that share a convergence prefix can snapshot the
//! converged world once and fork divergent continuations from it —
//! see [`Scenario::snapshot`](core::scenario::Scenario::snapshot) and
//! the README's "Checkpoint + fork" section.

pub use rf_apps as apps;
pub use rf_core as core;
pub use rf_discovery as discovery;
pub use rf_flowvisor as flowvisor;
pub use rf_gui as gui;
pub use rf_openflow as openflow;
pub use rf_routed as routed;
pub use rf_rpc as rpc;
pub use rf_sim as sim;
pub use rf_switch as switch;
pub use rf_topo as topo;
pub use rf_vnet as vnet;
pub use rf_wire as wire;

/// The names most programs need.
pub mod prelude {
    pub use rf_apps::{EchoHost, HostConfig, Pinger, VideoClient, VideoServer};
    pub use rf_core::apps::{
        AppCtx, ControlApp, ControlEvent, ControlPlane, ControlState, FibChange, LinkChange,
        OverflowPolicy, SendOutcome,
    };
    // Deprecated shims for the pre-redesign one-shot API; migrate to
    // `Scenario`/`ScenarioConfig`.
    #[allow(deprecated)]
    pub use rf_core::bootstrap::{Deployment, DeploymentConfig};
    pub use rf_core::chaos::{
        check_invariants, ChaosCampaign, ChaosSpec, FaultClass, InvariantContext,
        InvariantViolation, ReproCase,
    };
    pub use rf_core::manual::ManualConfigModel;
    pub use rf_core::rfcontroller::RfController;
    pub use rf_core::scenario::{
        Fault, FaultError, FaultSchedule, ForkError, HostAttachment, HostSlot, Scenario,
        ScenarioBuilder, ScenarioConfig, ScenarioMetrics, Snapshot, SnapshotError, Workload,
        WorkloadReport,
    };
    pub use rf_core::traffic::{
        ArrivalProcess, FlowSize, TrafficConfig, TrafficMode, TrafficPattern, TrafficReport,
        TrafficShape, TrafficSpec, WorkloadError,
    };
    pub use rf_gui::NetworkView;
    pub use rf_sim::{LinkProfile, Sim, SimConfig, Time};
    pub use rf_topo::{
        fat_tree, leaf_spine, line, pan_european, ring, TopoParseError, TopoSpec, Topology,
    };
    pub use rf_wire::{Ipv4Cidr, MacAddr};
}
