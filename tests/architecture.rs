//! E4 — Fig. 1 + Fig. 2 validation: the framework's architectural
//! invariants on the paper's own 4-switch layout (OF-A … OF-D).

use rf_core::rfcontroller::RfController;
use rf_discovery::TopologyController;
use rf_flowvisor::FlowVisor;
use rf_vnet::vm::VmAgent;
use routeflow_autoconf::prelude::*;

/// The Fig. 1 topology: OF-A — OF-B — OF-C — OF-D in a line, mirrored
/// by VM-A … VM-D.
fn fig1() -> Scenario {
    Scenario::on(line(4)).fast_timers().start()
}

#[test]
fn every_switch_gets_a_mirroring_vm_with_matching_id() {
    let mut dep = fig1();
    dep.run_until_configured(Time::from_secs(120)).unwrap();
    let rf = dep.sim.agent_as::<RfController>(dep.rf_ctrl).unwrap();
    let states = rf.switch_states();
    assert_eq!(states.len(), 4);
    assert!(states.iter().all(|(_, green)| *green));
    // VM ids equal switch dpids (paper §2: "a VM with an ID identical
    // to the switch ID").
    let dpids: Vec<u64> = states.iter().map(|(d, _)| *d).collect();
    assert_eq!(dpids, vec![1, 2, 3, 4]);
}

#[test]
fn vm_interconnect_mirrors_physical_topology() {
    let mut dep = fig1();
    dep.run_until_configured(Time::from_secs(120)).unwrap();
    dep.sim.run_until(Time::from_secs(60));
    // VM-A (end of line) must have exactly one OSPF adjacency; VM-B two.
    // VM agent ids: find by name through downcast scan.
    let mut adjacency_counts = Vec::new();
    for id in 0..200 {
        if let Some(vm) = dep.sim.agent_as::<VmAgent>(rf_sim::AgentId(id)) {
            adjacency_counts.push((vm.dpid(), vm.ospf_neighbors().len()));
        }
    }
    adjacency_counts.sort();
    assert_eq!(
        adjacency_counts,
        vec![(1, 1), (2, 2), (3, 2), (4, 1)],
        "VM adjacency degree must mirror the physical line"
    );
}

#[test]
fn flowvisor_proxies_every_switch_for_both_controllers() {
    let mut dep = fig1();
    dep.run_until_configured(Time::from_secs(120)).unwrap();
    let fv = dep
        .sim
        .agent_as::<FlowVisor>(dep.flowvisor.expect("default layout uses FlowVisor"))
        .unwrap();
    assert_eq!(fv.switch_count(), 4, "one session per switch");
    // No slice violation occurred during a clean bootstrap.
    assert_eq!(fv.denied_flow_mods, 0);
}

#[test]
fn topology_controller_only_admin_input_is_the_ip_range() {
    let mut dep = fig1();
    dep.run_until_configured(Time::from_secs(120)).unwrap();
    let tc = dep
        .sim
        .agent_as::<TopologyController>(dep.topo_ctrl)
        .unwrap();
    // Discovery found everything without per-switch configuration.
    assert_eq!(tc.switches().len(), 4);
    assert_eq!(tc.links().len(), 3);
    // All allocated subnets fall inside the administrator's range.
    for ev in &tc.events {
        if let rf_discovery::DiscoveryEvent::LinkUp { subnet, .. } = ev {
            assert!(
                Ipv4Cidr::new("172.31.0.0".parse().unwrap(), 16).contains(subnet.network()),
                "{subnet} outside the admin range"
            );
        }
    }
}

#[test]
fn rpc_path_is_exactly_once_under_retransmission() {
    // The relay retransmits; the server dedups. After a full bootstrap
    // there must be exactly one VM per switch even though rpc.sent can
    // exceed the number of distinct requests.
    let mut dep = fig1();
    dep.run_until_configured(Time::from_secs(120)).unwrap();
    let rf = dep.sim.agent_as::<RfController>(dep.rf_ctrl).unwrap();
    assert_eq!(rf.configured_switches(), 4);
    let mut vm_count = 0;
    for id in 0..200 {
        if dep.sim.agent_as::<VmAgent>(rf_sim::AgentId(id)).is_some() {
            vm_count += 1;
        }
    }
    assert_eq!(vm_count, 4, "exactly one VM per switch");
}

#[test]
fn gui_reflects_controller_state() {
    let mut dep = fig1();
    let topo = line(4);
    let mut view = NetworkView::new(topo);
    view.use_ansi = false;
    // Before anything runs: all red.
    assert_eq!(view.red_count(), 4);
    dep.run_until_configured(Time::from_secs(120)).unwrap();
    let states = dep
        .sim
        .agent_as::<RfController>(dep.rf_ctrl)
        .unwrap()
        .switch_states();
    view.update(&states);
    assert_eq!(view.green_count(), 4);
    let rendered = view.render(60, 12);
    assert!(rendered.contains("configured: 4/4"));
}
