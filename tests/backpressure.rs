//! Backpressure end-to-end: bounded, credit-metered switch channels
//! must change *when* control traffic moves, never *what* the data
//! plane ends up holding (under `Defer`), and every loss the
//! `DropOldest` policy takes must be visible in the accounting.

use rf_core::apps::OverflowPolicy;
use rf_core::scenario::{Fault, Scenario, ScenarioBuilder, Workload, WorkloadReport};
use rf_sim::Time;
use rf_switch::OpenFlowSwitch;
use rf_topo::ring;
use std::time::Duration;

/// Canonical cold-start cell used throughout: ring-5, fast timers,
/// fixed seed, run to steady state.
fn base(seed: u64) -> ScenarioBuilder {
    Scenario::on(ring(5))
        .fast_timers()
        .seed(seed)
        .trace_level(rf_sim::TraceLevel::Off)
}

/// Per-switch resident flow entries, formatted and sorted — the
/// byte-identity yardstick (everything except install timestamps).
fn flow_tables(sc: &Scenario) -> Vec<Vec<String>> {
    sc.switches
        .iter()
        .map(|&s| {
            let sw = sc
                .sim
                .agent_as::<OpenFlowSwitch>(s)
                .expect("switch agent alive");
            let mut entries: Vec<String> = sw
                .flow_table()
                .entries()
                .iter()
                .map(|e| {
                    format!(
                        "{:?}|{}|{:#x}|{:?}",
                        e.of_match, e.priority, e.cookie, e.actions
                    )
                })
                .collect();
            entries.sort();
            entries
        })
        .collect()
}

fn run_to_steady(mut sc: Scenario) -> Scenario {
    sc.run_until_configured(Time::from_secs(120))
        .expect("ring-5 must configure");
    let settle = sc.sim.now() + Duration::from_secs(30);
    sc.run_until(settle);
    sc
}

#[test]
fn defer_with_finite_capacity_converges_to_unbounded_fibs() {
    // The acceptance bar: any finite capacity >= 1 under `Defer` ends
    // with final FIBs byte-identical to the unbounded run, because
    // deferral paces the wire but the producers retry everything.
    let mut unbounded = run_to_steady(base(31).start());
    let baseline = flow_tables(&unbounded);
    assert!(baseline.iter().all(|t| !t.is_empty()));
    let um = unbounded.finish();
    assert_eq!(um.of_dropped, 0);

    for capacity in [1, 2, 4] {
        let mut sc = run_to_steady(
            base(31)
                .channel_capacity(capacity)
                .overflow_policy(OverflowPolicy::Defer)
                .start(),
        );
        let m = sc.finish();
        assert_eq!(m.of_dropped, 0, "Defer never drops (capacity {capacity})");
        assert_eq!(
            flow_tables(&sc),
            baseline,
            "capacity {capacity} final FIBs must match unbounded"
        );
        // Same controller decisions reach the wire, just in different
        // pushes.
        assert_eq!(m.of_msgs_sent, um.of_msgs_sent, "capacity {capacity}");
        assert!(
            m.of_queue_hwm <= capacity as u64,
            "queue bound must hold (hwm {} > {capacity})",
            m.of_queue_hwm
        );
    }
}

#[test]
fn tight_capacity_defers_and_still_converges() {
    // Capacity 1 on a 5-switch cold start has to push back: the
    // reconvergence burst cannot fit a 1-slot credit window.
    let mut sc = run_to_steady(base(31).channel_capacity(1).start());
    let m = sc.finish();
    assert!(
        m.of_deferred > 0,
        "a 1-slot channel must defer under the cold-start burst"
    );
    assert_eq!(m.of_dropped, 0);
}

#[test]
fn capacity_zero_defers_everything() {
    // The degenerate bound: no queue slots at all, so no OpenFlow
    // message ever reaches any switch — and the accounting says why.
    let mut sc = base(7).channel_capacity(0).start();
    sc.run_until(Time::from_secs(40));
    let m = sc.finish();
    assert_eq!(
        m.of_msgs_sent, 0,
        "nothing can pass a zero-capacity channel"
    );
    assert_eq!(m.of_pushes, 0);
    assert_eq!(m.of_queue_hwm, 0);
    assert!(m.of_deferred > 0, "every attempt must be deferred");
    assert_eq!(m.of_dropped, 0);
    // The only resident flows are the topology controller's LLDP punt
    // entries (cookie "LLDP"), which ride its own channel — nothing
    // from the RouteFlow side may land.
    assert!(
        flow_tables(&sc)
            .iter()
            .flatten()
            .all(|e| e.contains("0x4c4c4450")),
        "no RouteFlow FLOW_MOD may land"
    );
    // The control plane itself is fine — VMs provision regardless.
    assert_eq!(m.configured_switches, 5);
}

#[test]
fn capacity_one_with_batching_converges_identically() {
    // The batch stage hands multi-message bursts to a channel that can
    // only take one at a time: the split/retry path must still deliver
    // everything, in order.
    let unbatched = run_to_steady(base(13).start());
    let baseline = flow_tables(&unbatched);
    let mut sc = run_to_steady(base(13).fib_batch(4).channel_capacity(1).start());
    let m = sc.finish();
    assert_eq!(m.of_dropped, 0);
    assert!(m.of_deferred > 0, "batches of 4 into capacity 1 must defer");
    assert_eq!(
        flow_tables(&sc),
        baseline,
        "batching + tight capacity must not change the final FIBs"
    );
}

#[test]
fn drop_oldest_loses_messages_and_accounts_for_them() {
    // Same tight channel, lossy policy: of_dropped must light up, and
    // the data plane must end up strictly poorer than the lossless run
    // (the evicted FLOW_MODs are adds that never landed).
    let lossless = run_to_steady(base(31).start());
    let full_flows: usize = flow_tables(&lossless).iter().map(Vec::len).sum();
    let mut sc = run_to_steady(
        base(31)
            .channel_capacity(1)
            .overflow_policy(OverflowPolicy::DropOldest)
            .start(),
    );
    let m = sc.finish();
    assert!(m.of_dropped > 0, "a 1-slot DropOldest channel must evict");
    assert_eq!(m.of_deferred, 0, "DropOldest never defers");
    let lossy_flows: usize = flow_tables(&sc).iter().map(Vec::len).sum();
    assert!(
        lossy_flows < full_flows,
        "dropped FLOW_MODs must be missing from the data plane \
         ({lossy_flows} vs {full_flows})"
    );
}

#[test]
fn channel_stall_queues_then_releases() {
    // Stall one transit switch's control channel across the cold-start
    // burst. During the window its FLOW_MODs pile up (observable as a
    // queue high-water mark) and the probe path through it stays dark;
    // when the window closes the backlog flushes and the network ends
    // byte-identical to a run that never stalled.
    let stall_from = Duration::from_secs(2);
    let stall_until = Duration::from_secs(25);
    let clean = run_to_steady(base(11).start());
    let baseline = flow_tables(&clean);

    let mut sc = base(11)
        .with_fault(Fault::ChannelStall {
            dpid: 2,
            from: stall_from,
            until: stall_until,
        })
        .start();
    sc.run_until(Time::ZERO + (stall_until - Duration::from_secs(1)));
    let mid = sc.peek_metrics();
    assert!(
        mid.of_queue_hwm > 0,
        "the stalled channel must have queued FLOW_MODs"
    );
    let sc = run_to_steady(sc);
    let mut sc = sc;
    let m = sc.finish();
    assert_eq!(m.of_dropped, 0, "an unbounded stalled queue loses nothing");
    assert_eq!(
        flow_tables(&sc),
        baseline,
        "post-stall FIBs must match the never-stalled run"
    );
}

#[test]
fn stalled_bounded_channel_recovers_traffic_after_release() {
    // The full story in one cell: bounded channel + stall + ping
    // crossing the stalled switch. Pings must flow once the stall
    // clears and the deferred backlog drains.
    let stall_until = Duration::from_secs(25);
    let mut sc = Scenario::on(ring(4))
        .fast_timers()
        .seed(3)
        .trace_level(rf_sim::TraceLevel::Off)
        .channel_capacity(2)
        .with_workload(Workload::ping(0, 2))
        .with_fault(Fault::ChannelStall {
            dpid: 2,
            from: Duration::from_secs(2),
            until: stall_until,
        })
        .start();
    sc.run_until(Time::ZERO + stall_until + Duration::from_secs(30));
    let m = sc.finish();
    assert_eq!(m.of_dropped, 0);
    let reports = sc.workload_reports();
    let WorkloadReport::Ping(probe) = &reports[0] else {
        unreachable!("ping workload attached above");
    };
    let replies = &probe.replies;
    assert!(
        replies.iter().any(|(_, t)| *t > Time::ZERO + stall_until),
        "pings must flow after the stall clears (got {} replies)",
        replies.len()
    );
}

#[test]
fn fan_in_workload_reports_every_client() {
    // Three pingers converging on one server: every client must get
    // through, and the per-client report must carry each timeline.
    let mut sc = Scenario::on(ring(4))
        .fast_timers()
        .seed(9)
        .trace_level(rf_sim::TraceLevel::Off)
        .with_workload(Workload::ping_fan_in(vec![0, 1, 3], 2).expect("valid fan-in"))
        .start();
    sc.run_until_configured(Time::from_secs(120))
        .expect("ring-4 must configure");
    let settle = sc.sim.now() + Duration::from_secs(20);
    sc.run_until(settle);
    let reports = sc.workload_reports();
    let WorkloadReport::PingFanIn { clients } = &reports[0] else {
        unreachable!("fan-in workload attached above");
    };
    assert_eq!(clients.len(), 3);
    for (j, c) in clients.iter().enumerate() {
        assert!(
            c.first_reply_at.is_some(),
            "fan-in client {j} must reach the server"
        );
        assert!(!c.replies.is_empty());
    }
    // Fan-in concentrates edge state on the controller: one gateway
    // ARP answered per client (the echo server replies via the MAC it
    // learned from the incoming frame, so it never asks).
    let m = sc.finish();
    assert!(m.arp_replies >= 3, "one gateway ARP per fan-in client");
}
