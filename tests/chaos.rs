//! Chaos-engine end-to-end tests: kill→revive reconvergence, WAN
//! recovery after link flaps, campaign determinism, shrinker
//! convergence, and typed fault-schedule validation.

use routeflow_autoconf::core::scenario::{MatrixCell, MatrixKnob, MatrixSpec, ScenarioMatrix};
use routeflow_autoconf::prelude::*;
use routeflow_autoconf::vnet::VmAgent;
use std::time::Duration;

fn ping_report(sc: &Scenario) -> Option<rf_core::scenario::PingProbeReport> {
    sc.workload_reports().into_iter().find_map(|r| match r {
        WorkloadReport::Ping(p) => Some(p),
        _ => None,
    })
}

/// Satellite regression: `KillSwitch` is no longer terminal. A killed
/// switch revived by `ReviveSwitch` reconnects, gets a fresh VM, its
/// OSPF adjacencies re-form, and its FIB is re-mirrored into the flow
/// table — the full invariant suite passes on the healed world.
#[test]
fn kill_then_revive_reconverges_on_ring4() {
    let faults = vec![
        Fault::KillSwitch {
            node: 1,
            at: Duration::from_secs(30),
        },
        Fault::ReviveSwitch {
            node: 1,
            at: Duration::from_secs(40),
        },
    ];
    let mut sc = Scenario::on(ring(4))
        .fast_timers()
        .with_workload(Workload::ping(0, 2))
        .with_faults(faults.iter().cloned())
        .start();
    sc.run_until_configured(Time::from_secs(120))
        .expect("ring-4 configures");
    sc.run_until(Time::from_secs(90));

    // All four switches green again, the revived one included.
    assert_eq!(sc.configured_switches(), 4);

    // The revived switch's fresh VM holds Full adjacencies on both
    // ring interfaces and a non-empty FIB mirrored into its flow table.
    let state = sc.controller().state();
    let rec = state.switches.get(&2).expect("dpid 2 known");
    let vm = sc
        .sim
        .agent_as::<VmAgent>(rec.vm.expect("VM re-provisioned"))
        .expect("VM agent alive");
    let full = vm
        .ospf_neighbors()
        .iter()
        .filter(|(_, _, s)| *s == routeflow_autoconf::routed::ospf::NeighborState::Full)
        .count();
    assert!(full >= 2, "revived VM re-formed {full}/2 adjacencies");
    assert!(vm.fib_len() > 0, "revived VM re-learned routes");

    // The machine-checked invariants agree: nothing is stuck.
    let topo = ring(4);
    let violations = check_invariants(
        &sc,
        &InvariantContext {
            topo: &topo,
            faults: &faults,
            overflow: OverflowPolicy::Defer,
        },
    );
    assert!(violations.is_empty(), "clean recovery, got: {violations:?}");

    // Dataplane proof: pings sent after the revive are answered.
    let probe = ping_report(&sc).expect("ping workload reports");
    let after_revive = probe
        .replies
        .iter()
        .filter(|(seq, _)| {
            probe
                .sent
                .iter()
                .any(|(s, t)| s == seq && *t > Time::from_secs(40))
        })
        .count();
    assert!(after_revive > 0, "pings recovered after the revive");
}

/// Pick an edge that lies on a shortest path between `a` and `b` and
/// whose removal keeps the topology connected.
fn transit_edge(topo: &Topology, a: usize, b: usize) -> usize {
    let da = topo.bfs_distances(a);
    let db = topo.bfs_distances(b);
    let d = da[b];
    for (e, edge) in topo.edges().iter().enumerate() {
        let on_path = da[edge.a] + 1 + db[edge.b] == d || da[edge.b] + 1 + db[edge.a] == d;
        if !on_path {
            continue;
        }
        // Removal must keep the graph connected (otherwise "recovery"
        // is impossible by construction).
        let mut seen = vec![false; topo.node_count()];
        seen[0] = true;
        let mut stack = vec![0usize];
        while let Some(u) = stack.pop() {
            for (f, g) in topo.edges().iter().enumerate() {
                if f == e {
                    continue;
                }
                let v = if g.a == u {
                    g.b
                } else if g.b == u {
                    g.a
                } else {
                    continue;
                };
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        if seen.iter().all(|&s| s) {
            return e;
        }
    }
    panic!("no redundant transit edge between {a} and {b}");
}

/// Satellite: `Ping` recovery after `LinkDown → LinkUp` is bounded on
/// real corpus WANs, not just rings.
fn wan_ping_recovers(name: &str) {
    let topo: Topology = name.parse::<TopoSpec>().expect("corpus slug").build();
    let (a, b) = topo.farthest_pair().expect("non-trivial WAN");
    let edge = transit_edge(&topo, a, b);
    let down_at = Duration::from_secs(60);
    let up_at = Duration::from_secs(68);
    let mut sc = Scenario::on(topo)
        .fast_timers()
        .provision_width(8)
        .with_workload(Workload::ping(a, b))
        .with_faults([
            Fault::LinkDown { edge, at: down_at },
            Fault::LinkUp { edge, at: up_at },
        ])
        .start();
    let done = sc
        .run_until_configured(Time::from_secs(120))
        .expect("WAN configures");
    assert!(done < Time::ZERO + down_at, "flap must land post-config");
    sc.run_until(Time::from_secs(110));

    let probe = ping_report(&sc).expect("ping workload reports");
    // First round trip whose probe left after the heal: recovery is
    // bounded by the OSPF dead interval + SPF + flow push, with slack.
    let recovered = probe
        .replies
        .iter()
        .filter(|(seq, _)| {
            probe
                .sent
                .iter()
                .any(|(s, t)| s == seq && *t > Time::ZERO + up_at)
        })
        .map(|(_, t)| *t)
        .min()
        .unwrap_or_else(|| panic!("{name}: no ping recovered after LinkUp"));
    let bound = Time::ZERO + up_at + Duration::from_secs(20);
    assert!(
        recovered <= bound,
        "{name}: recovery at {recovered:?}, bound {bound:?}"
    );
}

#[test]
fn ping_recovers_after_link_flap_on_geant() {
    wan_ping_recovers("geant");
}

#[test]
fn ping_recovers_after_link_flap_on_abilene() {
    wan_ping_recovers("abilene");
}

/// The campaign's report is byte-identical at any worker-thread count
/// and fully reproducible from its seed — and the smoke campaign runs
/// green (no invariant violations).
#[test]
fn chaos_campaign_is_thread_invariant_and_green() {
    let campaign = ChaosCampaign::smoke(7);
    let one = campaign.run(1);
    let four = campaign.run(4);
    let eight = campaign.run(8);
    assert_eq!(one.report.to_json(), four.report.to_json());
    assert_eq!(one.report.to_json(), eight.report.to_json());
    // Reproducibility: a fresh identical campaign is the same bytes.
    let again = ChaosCampaign::smoke(7).run(4);
    assert_eq!(one.report.to_json(), again.report.to_json());

    assert_eq!(one.stats.schedules, 8);
    assert_eq!(one.stats.build_errors, 0);
    assert_eq!(
        one.stats.violations, 0,
        "smoke campaign must run green; repros: {:?}",
        one.repros
    );
    // Every cell carries the chaos accounting columns.
    for cell in &one.report.cells {
        assert!(cell.metrics.contains_key("chaos_faults"), "{}", cell.key);
        assert_eq!(cell.metrics["chaos_violations"], 0, "{}", cell.key);
    }
}

/// Replaying a repro case is deterministic: the same violations (here,
/// none — a kill the ring routes around) come back run after run, and
/// the artifact round-trips through its JSON form.
#[test]
fn repro_replay_is_deterministic() {
    let campaign = ChaosCampaign::smoke(3);
    let repro = ReproCase {
        key: "topo=ring-4/fault=manual/knob=chaos/seed=11".into(),
        topology: "ring-4".into(),
        knob: "chaos".into(),
        seed: 11,
        schedule: "manual".into(),
        faults: vec![Fault::KillSwitch {
            node: 1,
            at: Duration::from_secs(30),
        }],
        violations: Vec::new(),
    };
    let parsed = ReproCase::parse(&repro.to_json()).expect("round trip");
    let a = campaign.replay(&parsed);
    let b = campaign.replay(&parsed);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(
        a.is_empty(),
        "ring-4 routes around a dead transit switch: {a:?}"
    );
}

/// Tentpole acceptance: the shrinker converges a deliberately seeded
/// violation — a severed line topology buried under healed noise
/// faults — to a minimal (≤3, here exactly 1) fault repro, and does so
/// deterministically.
#[test]
fn shrinker_minimizes_a_seeded_violation() {
    use routeflow_autoconf::core::chaos::shrink_schedule;

    // line-4: the 0↔3 ping needs every edge. The culprit is the
    // un-healed LinkDown on edge 1; everything else heals by t=40s.
    let schedule = vec![
        Fault::ChannelStall {
            dpid: 2,
            from: Duration::from_secs(30),
            until: Duration::from_secs(34),
        },
        Fault::LinkLoss {
            edge: 2,
            loss_pct: 50.0,
            at: Duration::from_secs(31),
        },
        Fault::LinkDown {
            edge: 2,
            at: Duration::from_secs(32),
        },
        Fault::LinkDown {
            edge: 1,
            at: Duration::from_millis(35_250),
        },
        Fault::LinkLoss {
            edge: 2,
            loss_pct: 0.0,
            at: Duration::from_secs(36),
        },
        Fault::LinkUp {
            edge: 2,
            at: Duration::from_secs(37),
        },
        Fault::ChannelStall {
            dpid: 4,
            from: Duration::from_secs(38),
            until: Duration::from_secs(39),
        },
    ];

    // Test-only invariant: "pings sent after t=45s never come back" —
    // true iff the path stays severed.
    let still_fails = |faults: &[Fault]| -> bool {
        let mut sc = Scenario::on(line(4))
            .fast_timers()
            .with_workload(Workload::ping(0, 3))
            .with_faults(faults.iter().cloned())
            .start();
        sc.run_until_configured(Time::from_secs(120))
            .expect("line-4 configures");
        sc.run_until(Time::from_secs(80));
        let probe = ping_report(&sc).expect("ping workload reports");
        !probe.replies.iter().any(|(seq, _)| {
            probe
                .sent
                .iter()
                .any(|(s, t)| s == seq && *t > Time::from_secs(45))
        })
    };

    assert!(still_fails(&schedule), "seeded schedule must violate");
    let out = shrink_schedule(&schedule, still_fails);
    assert!(
        out.faults.len() <= 3,
        "minimal repro has {} faults: {:?}",
        out.faults.len(),
        out.faults
    );
    assert!(
        out.faults
            .iter()
            .any(|f| matches!(f, Fault::LinkDown { edge: 1, .. })),
        "culprit survives minimization: {:?}",
        out.faults
    );
    // Instant rounding kicked in: 35.25s → 35s.
    assert!(
        out.faults.iter().all(
            |f| !matches!(f, Fault::LinkDown { edge: 1, at } if *at != Duration::from_secs(35))
        ),
        "culprit instant rounded: {:?}",
        out.faults
    );
    // Determinism: the same minimization, run again, lands on the same
    // repro after the same number of predicate evaluations.
    let again = shrink_schedule(&schedule, still_fails);
    assert_eq!(format!("{:?}", out.faults), format!("{:?}", again.faults));
    assert_eq!(out.runs, again.runs);
}

/// Satellite: malformed fault schedules are typed errors at build
/// time, and matrix cells report `build_error = 1` instead of
/// panicking the sweep.
#[test]
fn malformed_fault_schedules_are_typed_build_errors() {
    let knob = MatrixKnob::fast("fast");
    let cases: Vec<(Fault, FaultError)> = vec![
        (
            Fault::KillSwitch {
                node: 9,
                at: Duration::from_secs(30),
            },
            FaultError::NodeOutOfRange { node: 9, nodes: 4 },
        ),
        (
            Fault::LinkDown {
                edge: 99,
                at: Duration::from_secs(30),
            },
            FaultError::EdgeOutOfRange { edge: 99, edges: 4 },
        ),
        (
            Fault::LinkLoss {
                edge: 0,
                loss_pct: 150.0,
                at: Duration::from_secs(30),
            },
            FaultError::LossOutOfRange { loss_pct: 150.0 },
        ),
        (
            Fault::ChannelStall {
                dpid: 1,
                from: Duration::from_secs(30),
                until: Duration::from_secs(30),
            },
            FaultError::EmptyStallWindow {
                from: Duration::from_secs(30),
                until: Duration::from_secs(30),
            },
        ),
        (
            Fault::ChannelStall {
                dpid: 7,
                from: Duration::from_secs(1),
                until: Duration::from_secs(2),
            },
            FaultError::StallDpidOutOfRange { dpid: 7, nodes: 4 },
        ),
    ];
    for (fault, want) in cases {
        let cell = MatrixCell::new(
            1,
            "ring-4".parse::<TopoSpec>().unwrap(),
            FaultSchedule::new("bad", vec![fault.clone()]),
            knob.clone(),
        );
        match ScenarioMatrix::standard_builder(&cell) {
            Err(WorkloadError::BadFault(err)) => assert_eq!(err, want, "for {fault:?}"),
            Err(other) => panic!("{fault:?}: expected BadFault, got {other:?}"),
            Ok(_) => panic!("{fault:?}: builder accepted a malformed schedule"),
        }
    }

    // Through the sweep: the bad cell reports `build_error = 1`, the
    // good cell still runs.
    let spec = MatrixSpec {
        seeds: vec![1],
        topologies: vec!["ring-4".into()],
        schedules: vec![
            FaultSchedule::none(),
            FaultSchedule::new(
                "bad-node9",
                vec![Fault::KillSwitch {
                    node: 9,
                    at: Duration::from_secs(30),
                }],
            ),
        ],
        knobs: vec![MatrixKnob::fast("fast")],
        configure_deadline: Duration::from_secs(120),
        post_fault_window: Duration::from_secs(5),
        settle: Duration::from_secs(5),
    };
    let report = ScenarioMatrix::new(spec).run(2);
    let bad = report
        .cells
        .iter()
        .find(|c| c.key.contains("bad-node9"))
        .expect("bad cell reported");
    assert_eq!(bad.metrics.get("build_error"), Some(&1));
    assert_eq!(bad.metrics.len(), 1, "build-error cells carry no metrics");
    let good = report
        .cells
        .iter()
        .find(|c| c.key.contains("fault=none"))
        .expect("good cell reported");
    assert!(good.metrics.contains_key("configured_switches_final"));
}
