//! Workspace-level end-to-end tests: hosts exchanging real traffic
//! across the automatically configured network — the demo scenario.

use rf_apps::video::{VideoClient, VideoServer};
use rf_sim::LinkProfile;
use routeflow_autoconf::prelude::*;
use std::time::Duration;

/// Attach a video server at `server_node` and client at `client_node`,
/// then return (scenario, server agent, client agent).
fn video_world(
    topo: Topology,
    server_node: usize,
    client_node: usize,
    fast: bool,
) -> (Scenario, rf_sim::AgentId, rf_sim::AgentId) {
    let mut b = Scenario::on(topo)
        .with_host(server_node, "10.1.0.0/24")
        .with_host(client_node, "10.2.0.0/24");
    if fast {
        b = b.fast_timers();
    }
    let mut dep = b.start();
    let s = dep.host_slots[0].clone();
    let c = dep.host_slots[1].clone();
    let server = dep.sim.add_agent(
        "video-server",
        Box::new(VideoServer::new(HostConfig {
            mac: MacAddr([2, 0xAA, 0, 0, 0, 1]),
            addr: Ipv4Cidr::new(s.host_ip, s.subnet.prefix_len),
            gateway: s.gateway,
        })),
    );
    let client = dep.sim.add_agent(
        "video-client",
        Box::new(VideoClient::new(
            HostConfig {
                mac: MacAddr([2, 0xBB, 0, 0, 0, 1]),
                addr: Ipv4Cidr::new(c.host_ip, c.subnet.prefix_len),
                gateway: c.gateway,
            },
            s.host_ip,
        )),
    );
    dep.sim.add_link(
        (s.switch, u32::from(s.port)),
        (server, 1),
        LinkProfile::default(),
    );
    dep.sim.add_link(
        (c.switch, u32::from(c.port)),
        (client, 1),
        LinkProfile::default(),
    );
    (dep, server, client)
}

#[test]
fn video_crosses_ring4_after_autoconfig() {
    let (mut dep, _server, client) = video_world(ring(4), 0, 2, true);
    dep.sim.run_until(Time::from_secs(120));
    let report = dep.sim.agent_as::<VideoClient>(client).unwrap().report;
    let first = report.first_byte_at.expect("video must arrive");
    assert!(
        first < Time::from_secs(120),
        "first byte at {first}, too late"
    );
    assert!(report.packets > 100, "stream must flow: {report:?}");
    assert!(report.playback_at.is_some(), "jitter buffer must fill");
}

#[test]
fn ping_works_between_hosts_after_autoconfig() {
    let mut dep = Scenario::on(line(3))
        .with_host(0, "10.1.0.0/24")
        .with_host(2, "10.2.0.0/24")
        .fast_timers()
        .start();
    let a = dep.host_slots[0].clone();
    let b = dep.host_slots[1].clone();
    let echo = dep.sim.add_agent(
        "echo-host",
        Box::new(EchoHost::new(HostConfig {
            mac: MacAddr([2, 0xCC, 0, 0, 0, 1]),
            addr: Ipv4Cidr::new(b.host_ip, b.subnet.prefix_len),
            gateway: b.gateway,
        })),
    );
    let pinger = dep.sim.add_agent(
        "pinger",
        Box::new(Pinger::new(
            HostConfig {
                mac: MacAddr([2, 0xDD, 0, 0, 0, 1]),
                addr: Ipv4Cidr::new(a.host_ip, a.subnet.prefix_len),
                gateway: a.gateway,
            },
            b.host_ip,
        )),
    );
    dep.sim.add_link(
        (a.switch, u32::from(a.port)),
        (pinger, 1),
        LinkProfile::default(),
    );
    dep.sim.add_link(
        (b.switch, u32::from(b.port)),
        (echo, 1),
        LinkProfile::default(),
    );
    dep.sim.run_until(Time::from_secs(90));
    let p = dep.sim.agent_as::<Pinger>(pinger).unwrap();
    assert!(
        p.first_reply_at.is_some(),
        "ping must succeed once configured"
    );
    assert!(!p.rtts.is_empty());
    // RTT plausibility: 4 hops of 1 ms links each way < 20 ms.
    let (_, rtt) = p.rtts[p.rtts.len() - 1];
    assert!(rtt < Duration::from_millis(20), "rtt {rtt:?}");
}

#[test]
fn pan_european_demo_video_within_four_minutes() {
    // The paper's §3 demonstration: 28-node pan-European topology,
    // video from a server to a remote client, arriving "within 4
    // minutes (including the configuration time)" — with the paper's
    // default Quagga timers, not the sped-up test timers.
    let topo = pan_european();
    let (a, b) = topo.farthest_pair().unwrap();
    let (mut dep, _server, client) = video_world(topo, a, b, false);
    dep.sim.run_until(Time::from_secs(240));
    let report = dep.sim.agent_as::<VideoClient>(client).unwrap().report;
    let first = report
        .first_byte_at
        .expect("video must reach the remote client");
    assert!(
        first < Time::from_secs(240),
        "first byte at {first}, exceeding the paper's 4-minute bound"
    );
}
