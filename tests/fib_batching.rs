//! Controller fast-path tests: per-switch FLOW_MOD batching must be
//! invisible to the data plane (identical final FIBs, fewer transport
//! writes), and the k-wide VM provisioning pipeline must strictly beat
//! the paper's serial pipeline on the config-time curve.

use rf_core::scenario::Scenario;
use rf_sim::Time;
use rf_switch::OpenFlowSwitch;
use rf_topo::ring;
use std::time::Duration;

/// Run a fault-free ring-6 cold start to steady state and return, per
/// switch, the sorted set of resident flow entries (match, priority,
/// cookie, actions — everything except install timestamps/counters).
fn steady_state_flows(fib_batch: usize) -> Vec<Vec<String>> {
    let mut sc = Scenario::on(ring(6))
        .fast_timers()
        .seed(21)
        .fib_batch(fib_batch)
        .start();
    sc.run_until_configured(Time::from_secs(120))
        .expect("ring-6 must configure");
    // Let OSPF fully converge and every queued FLOW_MOD flush.
    let settle = sc.sim.now() + Duration::from_secs(30);
    sc.run_until(settle);
    sc.switches
        .iter()
        .map(|&s| {
            let sw = sc
                .sim
                .agent_as::<OpenFlowSwitch>(s)
                .expect("switch agent alive");
            let mut entries: Vec<String> = sw
                .flow_table()
                .entries()
                .iter()
                .map(|e| {
                    format!(
                        "{:?}|{}|{:#x}|{:?}",
                        e.of_match, e.priority, e.cookie, e.actions
                    )
                })
                .collect();
            entries.sort();
            entries
        })
        .collect()
}

#[test]
fn batched_and_unbatched_runs_install_identical_fibs() {
    // The batching stage reorders nothing within a switch and drops
    // nothing: whatever the route-to-flow mirror decided must land in
    // the data plane identically whether FLOW_MODs go out one-by-one
    // (the paper's behaviour) or as multi-message pushes.
    let unbatched = steady_state_flows(1);
    let batched = steady_state_flows(8);
    assert_eq!(
        unbatched.len(),
        batched.len(),
        "same number of switches either way"
    );
    for (i, (u, b)) in unbatched.iter().zip(&batched).enumerate() {
        assert!(!u.is_empty(), "switch {i} must hold flows");
        assert_eq!(u, b, "switch {i} final FIB must not depend on batching");
    }
}

#[test]
fn batching_coalesces_transport_writes_without_changing_traffic() {
    let run = |fib_batch: usize| {
        let mut sc = Scenario::on(ring(6))
            .fast_timers()
            .seed(21)
            .fib_batch(fib_batch)
            .start();
        sc.run_until_configured(Time::from_secs(120))
            .expect("ring-6 must configure");
        let settle = sc.sim.now() + Duration::from_secs(30);
        sc.run_until(settle);
        sc.finish()
    };
    let serial = run(1);
    let batched = run(8);
    // Same controller decisions → same messages and bytes on the wire
    // (batching concatenates frames, it does not re-encode them) …
    assert_eq!(serial.flows_installed, batched.flows_installed);
    assert_eq!(serial.of_msgs_sent, batched.of_msgs_sent);
    assert_eq!(serial.of_bytes_sent, batched.of_bytes_sent);
    // … but strictly fewer transport writes, through the batch stage.
    assert!(
        batched.of_pushes < serial.of_pushes,
        "batched pushes ({}) must undercut serial pushes ({})",
        batched.of_pushes,
        serial.of_pushes
    );
    assert!(batched.fib_batches > 0, "batch stage must have flushed");
    assert_eq!(serial.fib_batches, 0, "fib_batch=1 must bypass batching");
}

#[test]
fn harvest_flushes_a_sub_tick_tail_batch() {
    // Regression: with `fib_batch > 1`, FLOW_MODs wait up to 50 ms for
    // the flush tick. A cell that stops inside that window used to
    // harvest metrics with the last batch still unsent — short cells
    // silently under-reported their own FLOW_MODs and flow tables.
    // `Scenario::metrics` now drains pending output first. Scan the
    // convergence window for an instant where a tail batch is pending
    // and prove the drained harvest includes it.
    let mut caught = false;
    for step in 0..300 {
        let t = Time::from_millis(5_000 + step * 10);
        let mut sc = Scenario::on(ring(6))
            .fast_timers()
            .seed(21)
            .fib_batch(64) // threshold never reached: everything rides the tick
            .trace_level(rf_sim::TraceLevel::Off)
            .start();
        sc.run_until(t);
        let before = sc.peek_metrics();
        let after = sc.finish();
        assert!(
            after.of_msgs_sent >= before.of_msgs_sent,
            "draining can only add wire traffic"
        );
        if after.of_msgs_sent > before.of_msgs_sent {
            caught = true;
            assert!(
                after.dataplane_flows >= before.dataplane_flows,
                "the flushed batch must reach the switch tables"
            );
            break;
        }
    }
    assert!(
        caught,
        "the scan must find an instant with a sub-tick tail batch pending \
         (otherwise this regression test is vacuous)"
    );
}

#[test]
fn k_wide_provisioning_flattens_the_config_curve() {
    // The Fig. 3 bottleneck: serial VM creation makes the i-th switch
    // wait for i-1 boots. A k=8 pipeline overlaps them, so both the
    // median per-VM config time and the last-green time must drop
    // strictly on ring-8.
    let green_times = |width: usize| {
        let mut sc = Scenario::on(ring(8))
            .fast_timers()
            .seed(5)
            .provision_width(width)
            .start();
        let done = sc
            .run_until_configured(Time::from_secs(300))
            .expect("ring-8 must configure");
        let mut greens: Vec<u64> = sc
            .finish()
            .per_switch_config_time
            .iter()
            .filter_map(|(_, t)| t.map(|t| t.as_nanos()))
            .collect();
        greens.sort_unstable();
        (greens[(greens.len() - 1) / 2], done)
    };
    let (serial_median, serial_done) = green_times(1);
    let (wide_median, wide_done) = green_times(8);
    assert!(
        wide_median < serial_median,
        "k=8 median green ({wide_median} ns) must sit strictly below serial ({serial_median} ns)"
    );
    assert!(
        wide_done < serial_done,
        "k=8 completion ({wide_done}) must beat serial ({serial_done})"
    );
}
