//! Workspace-level tests for the `ScenarioMatrix` sweep harness: the
//! determinism contract (identical report bytes at any worker-thread
//! count, cell order independent of completion order) and the
//! link-flap soak path, which exercises `Fault::LinkDown`/`LinkUp` end
//! to end — ROADMAP noted only `KillSwitch` was exercised before.

use rf_core::scenario::{
    FaultSchedule, MatrixKnob, MatrixSpec, Scenario, ScenarioMatrix, Workload, WorkloadReport,
};
use rf_sim::Time;
use rf_topo::ring;
use std::time::Duration;

/// A deliberately tiny grid: 4 cells on ring-4 with early faults, so
/// the whole matrix runs three times (1/4/8 workers) within a debug
/// test budget. Ring-4's standard probe pair is (0, 2), leaving node 1
/// as genuine transit for the kill schedule to remove. The second knob
/// turns on the controller fast path (k-wide provisioning + FLOW_MOD
/// batching), so the determinism contract is proven with the new axes
/// enabled.
fn tiny_spec() -> MatrixSpec {
    MatrixSpec {
        seeds: vec![7],
        topologies: vec!["ring-4".into()],
        schedules: vec![
            FaultSchedule::kill_switch(1, Duration::from_secs(12)),
            FaultSchedule::link_flap(0, Duration::from_secs(12), Duration::from_secs(4), 1),
        ],
        knobs: vec![
            MatrixKnob::fast("fast"),
            MatrixKnob::fast("fast-k3b4")
                .with_provision_width(3)
                .with_fib_batch(4),
        ],
        configure_deadline: Duration::from_secs(60),
        post_fault_window: Duration::from_secs(15),
        settle: Duration::from_secs(5),
    }
}

#[test]
fn matrix_report_bytes_identical_across_worker_counts() {
    let matrix = ScenarioMatrix::new(tiny_spec());
    let one = matrix.run(1).to_json();
    let four = matrix.run(4).to_json();
    let eight = matrix.run(8).to_json();
    assert_eq!(one, four, "1-thread and 4-thread reports must match");
    assert_eq!(four, eight, "4-thread and 8-thread reports must match");
}

#[test]
fn matrix_cell_order_is_sorted_not_completion_order() {
    // With more workers than cells, completion order is scheduler
    // noise; the report must come out keyed and sorted regardless. The
    // two schedules sort as flap < kill ('f' < 'k'), while the spec
    // declares kill first — so a report in declaration or completion
    // order would fail this.
    let report = ScenarioMatrix::new(tiny_spec()).run(8);
    let keys: Vec<&str> = report.cells.iter().map(|c| c.key.as_str()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "cells must be key-sorted");
    assert!(keys[0].contains("fault=flap"), "{}", keys[0]);
    assert!(keys[2].contains("fault=kill"), "{}", keys[2]);
}

#[test]
fn link_flap_soak_heals_end_to_end() {
    // Ring of 4, ping crossing the fabric, and the link on the probe's
    // shortest path flapping twice. While the link is down OSPF must
    // route around it (longer arc); after the final LinkUp the network
    // must keep answering. This drives Fault::LinkDown and
    // Fault::LinkUp through the full stack: sim link state, switch
    // port status, discovery timeout, OSPF dead interval, RouteFlow
    // FLOW_MOD rewrites.
    let flap = FaultSchedule::link_flap(0, Duration::from_secs(20), Duration::from_secs(8), 2);
    let last_fault = Time::ZERO + flap.last_fault_at().unwrap();
    let mut sc = Scenario::on(ring(4))
        .fast_timers()
        .seed(11)
        .with_workload(Workload::ping(0, 2))
        .with_faults(flap.faults.iter().cloned())
        .start();
    sc.run_until(last_fault + Duration::from_secs(30));

    let reports = sc.workload_reports();
    let WorkloadReport::Ping { replies, .. } = &reports[0] else {
        unreachable!("ping workload attached above");
    };
    assert!(
        replies.iter().any(|(_, t)| *t < Time::from_secs(20)),
        "network must converge before the first flap"
    );
    assert!(
        replies.iter().any(|(_, t)| *t > last_fault),
        "pings must flow again after the final LinkUp"
    );
    // The victim link comes back: the dataplane must still hold a
    // full mesh of routed flows (no permanent blackhole).
    let m = sc.metrics();
    assert_eq!(m.configured_switches, 4, "no switch may die in a flap");
    assert!(
        m.flows_removed > 0,
        "LinkDown must retract routes (got {} removals)",
        m.flows_removed
    );
}

#[test]
fn matrix_records_recovery_metrics_for_fault_cells() {
    let report = ScenarioMatrix::new(tiny_spec()).run(2);
    for cell in &report.cells {
        assert!(
            cell.metrics.contains_key("recovery_ns"),
            "fault cell {} must report recovery (metrics: {:?})",
            cell.key,
            cell.metrics.keys().collect::<Vec<_>>()
        );
        assert!(cell.metrics["recovery_ns"] > 0);
        assert_eq!(cell.metrics["switches"], 4);
    }
    let s = report.summary["recovery_ns"];
    assert_eq!(s.count, 4);
    assert!(s.min <= s.median && s.median <= s.max);
}

#[test]
fn matrix_cells_report_controller_transport_metrics() {
    // Schema v2: every cell carries the controller byte/message/push
    // counters, and the batched knob actually exercises the batch
    // stage (fib_batches > 0, strictly fewer transport writes than
    // messages) while the serial knob reports zero batches.
    let report = ScenarioMatrix::new(tiny_spec()).run(2);
    for cell in &report.cells {
        for metric in ["of_msgs_sent", "of_bytes_sent", "of_pushes", "fib_batches"] {
            assert!(
                cell.metrics.contains_key(metric),
                "cell {} must report {metric} (metrics: {:?})",
                cell.key,
                cell.metrics.keys().collect::<Vec<_>>()
            );
        }
        assert!(cell.metrics["of_msgs_sent"] > 0, "{}", cell.key);
        assert!(cell.metrics["of_bytes_sent"] > 0, "{}", cell.key);
        if cell.key.contains("knob=fast-k3b4") {
            assert!(cell.metrics["fib_batches"] > 0, "{}", cell.key);
            assert!(
                cell.metrics["of_pushes"] < cell.metrics["of_msgs_sent"],
                "batched cell {} must coalesce pushes ({} pushes / {} msgs)",
                cell.key,
                cell.metrics["of_pushes"],
                cell.metrics["of_msgs_sent"]
            );
        } else {
            assert_eq!(cell.metrics["fib_batches"], 0, "{}", cell.key);
        }
    }
    // The new metrics roll up into the summary like any other.
    assert!(report.summary.contains_key("of_bytes_sent"));
    assert_eq!(report.summary["of_pushes"].count, report.cells.len() as i64);
}
