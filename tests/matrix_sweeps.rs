//! Workspace-level tests for the `ScenarioMatrix` sweep harness: the
//! determinism contract (identical report bytes at any worker-thread
//! count, cell order independent of completion order) and the
//! link-flap soak path, which exercises `Fault::LinkDown`/`LinkUp` end
//! to end — ROADMAP noted only `KillSwitch` was exercised before.

use rf_core::scenario::{
    FaultSchedule, MatrixKnob, MatrixSpec, Scenario, ScenarioMatrix, Workload, WorkloadReport,
};
use rf_core::traffic::{FlowSize, TrafficSpec};
use rf_sim::Time;
use rf_topo::ring;
use std::time::Duration;

/// A deliberately tiny grid: 6 cells on ring-4 with early faults, so
/// the whole matrix runs three times (1/4/8 workers) within a debug
/// test budget. Ring-4's standard probe pair is (0, 2), leaving node 1
/// as genuine transit for the kill schedule to remove. The second knob
/// turns on the controller fast path (k-wide provisioning + FLOW_MOD
/// batching) *and* a bounded capacity-8 channel, and the third
/// schedule stalls a transit switch's control channel across the
/// cold-start burst — so the determinism contract is proven with the
/// schema-v3 backpressure axes enabled.
fn tiny_spec() -> MatrixSpec {
    MatrixSpec {
        seeds: vec![7],
        topologies: vec!["ring-4".into()],
        schedules: vec![
            FaultSchedule::kill_switch(1, Duration::from_secs(12)),
            FaultSchedule::link_flap(0, Duration::from_secs(12), Duration::from_secs(4), 1),
            FaultSchedule::channel_stall(2, Duration::from_secs(4), Duration::from_secs(14)),
        ],
        knobs: vec![
            MatrixKnob::fast("fast"),
            MatrixKnob::fast("fast-k3b4c8")
                .with_provision_width(3)
                .with_fib_batch(4)
                .with_channel_capacity(8),
        ],
        configure_deadline: Duration::from_secs(60),
        post_fault_window: Duration::from_secs(15),
        settle: Duration::from_secs(5),
    }
}

/// A grid shaped for the checkpoint/fork path: every fault fires well
/// after ring-4 converges (fast timers configure in single-digit
/// seconds), so each (topology × knob × seed) group's kill, flap and
/// late-stall members all fork from the shared converged snapshot.
/// Two stochastic-traffic knobs ride along — one packet-level Poisson
/// mix, one flow-level incast, both offering *after* the fork point —
/// so the identity contract covers RNG streams continuing across a
/// fork, at both traffic granularities.
fn forky_spec() -> MatrixSpec {
    MatrixSpec {
        seeds: vec![7, 8],
        topologies: vec!["ring-4".into()],
        schedules: vec![
            FaultSchedule::none(),
            FaultSchedule::kill_switch(1, Duration::from_secs(25)),
            FaultSchedule::link_flap(0, Duration::from_secs(25), Duration::from_secs(4), 1),
            FaultSchedule::channel_stall(2, Duration::from_secs(24), Duration::from_secs(34)),
        ],
        knobs: vec![
            MatrixKnob::fast("fast"),
            MatrixKnob::fast("fast-poisson").with_traffic(
                TrafficSpec::poisson(2, 3.0, FlowSize::fixed(30_000))
                    .window(Duration::from_secs(20), Duration::from_secs(10)),
            ),
            MatrixKnob::fast("fast-incast3f").with_traffic(
                TrafficSpec::incast(3, FlowSize::fixed(50_000), Duration::from_secs(2), 3)
                    .flow_level()
                    .window(Duration::from_secs(20), Duration::from_secs(10)),
            ),
        ],
        configure_deadline: Duration::from_secs(60),
        post_fault_window: Duration::from_secs(12),
        settle: Duration::from_secs(5),
    }
}

#[test]
fn forked_sweep_bytes_identical_to_cold_at_1_4_8_threads() {
    // THE determinism contract of the checkpoint/fork tentpole: the
    // forked sweep's report must be byte-for-byte the cold report, at
    // every worker count — including stochastic-traffic cells whose
    // RNG streams must continue across the fork exactly as they would
    // have run uninterrupted.
    let matrix = ScenarioMatrix::new(forky_spec());
    let cold = matrix.run(2).to_json();
    for threads in [1, 4, 8] {
        let forked = matrix.run_forked(threads).to_json();
        assert_eq!(
            forked, cold,
            "forked report at {threads} threads must be byte-identical to cold"
        );
    }
}

#[test]
fn forked_sweep_actually_forks_the_late_fault_cells() {
    // Guard against the fork path silently degrading to all-cold (in
    // which case the identity test above proves nothing): with every
    // fault after the snapshot instant, all members of every
    // multi-cell group fork. 2 seeds × 3 knobs = 6 groups of 4.
    let matrix = ScenarioMatrix::new(forky_spec());
    let (report, stats) = matrix.run_instrumented_forked(2, ScenarioMatrix::standard_builder);
    assert_eq!(report.cells.len(), 24);
    assert_eq!(
        stats.forked, 24,
        "every cell in every group must run as a fork"
    );
    // The cold entry points never fork.
    let (_, cold_stats) = matrix.run_instrumented(2, ScenarioMatrix::standard_builder);
    assert_eq!(cold_stats.forked, 0);
}

#[test]
fn forked_sweep_with_early_faults_falls_back_cold_and_stays_identical() {
    // tiny_spec's channel stall opens at 4 s — *before* the serial
    // knob's world converges (≈4.02 s), making that cell unforkable.
    // The forked sweep must detect that per cell, fall back to a cold
    // start and still emit the cold bytes.
    let matrix = ScenarioMatrix::new(tiny_spec());
    let cold = matrix.run(2).to_json();
    let (report, stats) = matrix.run_instrumented_forked(4, ScenarioMatrix::standard_builder);
    assert_eq!(report.to_json(), cold);
    // Kill (12 s) and flap (12 s) fork in both knob groups. The stall
    // splits them: the k-wide knob configures in ≈1 s, before the
    // window opens, so its stall cell forks; the serial knob snapshots
    // after 4 s, so its stall cell must go cold.
    assert_eq!(stats.forked, 5, "2 × (kill + flap) + the k-wide stall");
    assert!(
        stats.forked < report.cells.len(),
        "at least one cell must exercise the cold fallback"
    );
}

#[test]
fn matrix_report_bytes_identical_across_worker_counts() {
    let matrix = ScenarioMatrix::new(tiny_spec());
    let one = matrix.run(1).to_json();
    let four = matrix.run(4).to_json();
    let eight = matrix.run(8).to_json();
    assert_eq!(one, four, "1-thread and 4-thread reports must match");
    assert_eq!(four, eight, "4-thread and 8-thread reports must match");
}

#[test]
fn instrumented_sweep_matches_plain_run_and_counts_events() {
    // The perf harness rides run_instrumented; its report must be the
    // exact bytes run() produces (work-stealing order and wall-clock
    // probes must not leak into the artifact), its stats keyed like
    // the report, and event counts deterministic.
    let matrix = ScenarioMatrix::new(tiny_spec());
    let plain = matrix.run(2).to_json();
    let (report, stats) = matrix.run_instrumented(2, ScenarioMatrix::standard_builder);
    assert_eq!(report.to_json(), plain);
    assert_eq!(stats.cells.len(), report.cells.len());
    for (stat, cell) in stats.cells.iter().zip(&report.cells) {
        assert_eq!(stat.key, cell.key);
        assert!(stat.events > 0, "cell {} dispatched no events?", stat.key);
    }
    let (_, stats2) = matrix.run_instrumented(4, ScenarioMatrix::standard_builder);
    let ev1: Vec<u64> = stats.cells.iter().map(|c| c.events).collect();
    let ev2: Vec<u64> = stats2.cells.iter().map(|c| c.events).collect();
    assert_eq!(ev1, ev2, "event counts must be thread-count independent");
    assert!(stats.wall.as_nanos() > 0);
}

#[test]
fn matrix_cell_order_is_sorted_not_completion_order() {
    // With more workers than cells, completion order is scheduler
    // noise; the report must come out keyed and sorted regardless. The
    // two schedules sort as flap < kill ('f' < 'k'), while the spec
    // declares kill first — so a report in declaration or completion
    // order would fail this.
    let report = ScenarioMatrix::new(tiny_spec()).run(8);
    let keys: Vec<&str> = report.cells.iter().map(|c| c.key.as_str()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "cells must be key-sorted");
    assert!(keys[0].contains("fault=flap"), "{}", keys[0]);
    assert!(keys[2].contains("fault=kill"), "{}", keys[2]);
}

#[test]
fn link_flap_soak_heals_end_to_end() {
    // Ring of 4, ping crossing the fabric, and the link on the probe's
    // shortest path flapping twice. While the link is down OSPF must
    // route around it (longer arc); after the final LinkUp the network
    // must keep answering. This drives Fault::LinkDown and
    // Fault::LinkUp through the full stack: sim link state, switch
    // port status, discovery timeout, OSPF dead interval, RouteFlow
    // FLOW_MOD rewrites.
    let flap = FaultSchedule::link_flap(0, Duration::from_secs(20), Duration::from_secs(8), 2);
    let last_fault = Time::ZERO + flap.last_fault_at().unwrap();
    let mut sc = Scenario::on(ring(4))
        .fast_timers()
        .seed(11)
        .with_workload(Workload::ping(0, 2))
        .with_faults(flap.faults.iter().cloned())
        .start();
    sc.run_until(last_fault + Duration::from_secs(30));

    let reports = sc.workload_reports();
    let WorkloadReport::Ping(probe) = &reports[0] else {
        unreachable!("ping workload attached above");
    };
    let replies = &probe.replies;
    assert!(
        replies.iter().any(|(_, t)| *t < Time::from_secs(20)),
        "network must converge before the first flap"
    );
    assert!(
        replies.iter().any(|(_, t)| *t > last_fault),
        "pings must flow again after the final LinkUp"
    );
    // The victim link comes back: the dataplane must still hold a
    // full mesh of routed flows (no permanent blackhole).
    let m = sc.finish();
    assert_eq!(m.configured_switches, 4, "no switch may die in a flap");
    assert!(
        m.flows_removed > 0,
        "LinkDown must retract routes (got {} removals)",
        m.flows_removed
    );
}

#[test]
fn matrix_records_recovery_metrics_for_fault_cells() {
    let report = ScenarioMatrix::new(tiny_spec()).run(2);
    for cell in &report.cells {
        assert!(
            cell.metrics.contains_key("recovery_ns"),
            "fault cell {} must report recovery (metrics: {:?})",
            cell.key,
            cell.metrics.keys().collect::<Vec<_>>()
        );
        assert!(cell.metrics["recovery_ns"] > 0);
        assert_eq!(cell.metrics["switches"], 4);
    }
    let s = report.summary["recovery_ns"];
    assert_eq!(s.count, 6);
    assert!(s.min <= s.median && s.median <= s.max);
}

#[test]
fn matrix_cells_report_controller_transport_metrics() {
    // Schema v2: every cell carries the controller byte/message/push
    // counters, and the batched knob actually exercises the batch
    // stage (fib_batches > 0, strictly fewer transport writes than
    // messages) while the serial knob reports zero batches.
    let report = ScenarioMatrix::new(tiny_spec()).run(2);
    for cell in &report.cells {
        // Schema v3: transport counters plus the backpressure triple
        // in every cell.
        for metric in [
            "of_msgs_sent",
            "of_bytes_sent",
            "of_pushes",
            "fib_batches",
            "of_deferred",
            "of_dropped",
            "of_queue_hwm",
        ] {
            assert!(
                cell.metrics.contains_key(metric),
                "cell {} must report {metric} (metrics: {:?})",
                cell.key,
                cell.metrics.keys().collect::<Vec<_>>()
            );
        }
        assert!(cell.metrics["of_msgs_sent"] > 0, "{}", cell.key);
        assert!(cell.metrics["of_bytes_sent"] > 0, "{}", cell.key);
        assert_eq!(
            cell.metrics["of_dropped"], 0,
            "Defer cells never drop: {}",
            cell.key
        );
        if cell.key.contains("knob=fast-k3b4") {
            assert!(cell.metrics["fib_batches"] > 0, "{}", cell.key);
            assert!(
                cell.metrics["of_pushes"] < cell.metrics["of_msgs_sent"],
                "batched cell {} must coalesce pushes ({} pushes / {} msgs)",
                cell.key,
                cell.metrics["of_pushes"],
                cell.metrics["of_msgs_sent"]
            );
        } else {
            assert_eq!(cell.metrics["fib_batches"], 0, "{}", cell.key);
        }
        if cell.key.contains("fault=stall") {
            assert!(
                cell.metrics["of_queue_hwm"] > 0,
                "a stalled channel must show queue depth: {}",
                cell.key
            );
        }
    }
    // The new metrics roll up into the summary like any other.
    assert!(report.summary.contains_key("of_bytes_sent"));
    assert!(report.summary.contains_key("of_queue_hwm"));
    assert_eq!(report.summary["of_pushes"].count, report.cells.len() as i64);
}

#[test]
fn sustained_loss_soak_degrades_then_heals() {
    // ROADMAP "sustained-loss soak": link 0 (on the ring-4 probe
    // path) drops 40% of frames for a 20 s window, then heals. The
    // probe must log replies before, lose some during, and stream
    // cleanly again after — exercising Fault::LinkLoss end to end
    // (chaos agent → Sim::set_link_loss → per-frame fault model).
    let loss = FaultSchedule::link_loss(0, 40.0, Duration::from_secs(20)..Duration::from_secs(40));
    assert_eq!(loss.faults.len(), 2, "onset and heal");
    assert_eq!(loss.last_fault_at(), Some(Duration::from_secs(40)));
    let heal_at = Time::ZERO + loss.last_fault_at().unwrap();
    let mut sc = Scenario::on(ring(4))
        .fast_timers()
        .seed(11)
        .trace_level(rf_sim::TraceLevel::Off)
        .with_workload(Workload::ping(0, 2))
        .with_faults(loss.faults.iter().cloned())
        .start();
    sc.run_until(heal_at + Duration::from_secs(30));

    let reports = sc.workload_reports();
    let WorkloadReport::Ping(probe) = &reports[0] else {
        unreachable!("ping workload attached above");
    };
    let (sent, replies) = (&probe.sent, &probe.replies);
    assert!(
        replies.iter().any(|(_, t)| *t < Time::from_secs(20)),
        "network must converge before the loss window"
    );
    // Inside the window both the echo and its reply cross the lossy
    // link: at 40% per frame some round trips must fail...
    let window_sent: Vec<u16> = sent
        .iter()
        .filter(|(_, t)| *t > Time::from_secs(20) && *t < Time::from_secs(38))
        .map(|(s, _)| *s)
        .collect();
    let window_answered = window_sent
        .iter()
        .filter(|s| replies.iter().any(|(r, _)| r == *s))
        .count();
    assert!(
        window_answered < window_sent.len(),
        "a 40% lossy path must cost round trips ({window_answered}/{})",
        window_sent.len()
    );
    // ... and after the heal the loss profile is really gone: once
    // routing has resettled (the window can trip OSPF's dead interval,
    // so allow a reconvergence margin), every probe completes.
    let healed_sent: Vec<u16> = sent
        .iter()
        .filter(|(_, t)| {
            // ... and not so late that the reply outruns the run end.
            *t > heal_at + Duration::from_secs(15) && *t < heal_at + Duration::from_secs(29)
        })
        .map(|(s, _)| *s)
        .collect();
    assert!(!healed_sent.is_empty());
    assert!(
        healed_sent
            .iter()
            .all(|s| replies.iter().any(|(r, _)| r == s)),
        "after the heal every probe must complete"
    );
    // The loss window may or may not trip OSPF's dead interval (it is
    // seed-dependent); either way no switch dies.
    assert_eq!(sc.finish().configured_switches, 4);
}

#[test]
fn fan_in_knob_reports_per_client_metrics() {
    // The smoke grid's fan-in knob in miniature: one cell, 3 clients
    // converging on the farthest switch, no faults.
    let spec = MatrixSpec {
        seeds: vec![5],
        topologies: vec!["ring-4".into()],
        schedules: vec![FaultSchedule::none()],
        knobs: vec![MatrixKnob::fast("fast-fanin3").with_fan_in(3)],
        configure_deadline: Duration::from_secs(60),
        post_fault_window: Duration::from_secs(10),
        settle: Duration::from_secs(8),
    };
    let report = ScenarioMatrix::new(spec).run(1);
    assert_eq!(report.cells.len(), 1);
    let m = &report.cells[0].metrics;
    assert_eq!(m["fanin_clients"], 3);
    assert_eq!(
        m["fanin_clients_served"], 3,
        "every client must get through"
    );
    assert!(m["fanin_replies"] >= 3 * 3, "a few round trips per client");
    assert!(m.contains_key("fanin_all_served_ns"));
    // The plain-ping metrics stay absent — the fan-in replaces them.
    assert!(!m.contains_key("ping_replies"));
}

#[test]
fn corpus_slice_is_deterministic_across_worker_counts() {
    // A miniature of the `--corpus` grid: two WAN corpus files, a
    // fat-tree and a seeded random graph, fault-free. The determinism
    // contract must hold with the corpus loader and both parametric
    // generator families in the build path.
    let spec = MatrixSpec {
        seeds: vec![3],
        topologies: ["abilene", "nordu", "fat-tree-k4", "er-12-s5"]
            .map(String::from)
            .to_vec(),
        schedules: vec![FaultSchedule::none()],
        knobs: vec![MatrixKnob::fast("fast-k8b16")
            .with_provision_width(8)
            .with_fib_batch(16)],
        configure_deadline: Duration::from_secs(120),
        post_fault_window: Duration::from_secs(10),
        settle: Duration::from_secs(5),
    };
    let matrix = ScenarioMatrix::new(spec);
    let one = matrix.run(1);
    let four = matrix.run(4).to_json();
    let eight = matrix.run(8).to_json();
    assert_eq!(
        one.to_json(),
        four,
        "1-thread and 4-thread reports must match"
    );
    assert_eq!(four, eight, "4-thread and 8-thread reports must match");
    // Every topology configured and answered probes.
    for cell in &one.cells {
        assert!(
            cell.metrics.contains_key("all_configured_ns"),
            "cell {} never configured",
            cell.key
        );
        assert!(cell.metrics["ping_replies"] > 0, "{}", cell.key);
    }
    let medians = one.per_topology_medians("all_configured_ns");
    assert_eq!(medians.len(), 4, "one median row per topology");
}

#[test]
fn malformed_topology_records_build_error_cell() {
    // A typo'd axis value (`grid-4x`) must not panic the sweep or
    // silently vanish: its cells report `build_error = 1` and nothing
    // else, while the well-formed topology's cells run normally.
    let spec = MatrixSpec {
        seeds: vec![1],
        topologies: vec!["ring-4".into(), "grid-4x".into()],
        schedules: vec![FaultSchedule::none()],
        knobs: vec![MatrixKnob::fast("fast")],
        configure_deadline: Duration::from_secs(60),
        post_fault_window: Duration::from_secs(10),
        settle: Duration::from_secs(5),
    };
    let report = ScenarioMatrix::new(spec).run(2);
    assert_eq!(report.cells.len(), 2);
    let bad = report
        .cells
        .iter()
        .find(|c| c.key.starts_with("topo=grid-4x/"))
        .expect("malformed topology still forms a cell");
    assert_eq!(
        bad.metrics,
        std::collections::BTreeMap::from([("build_error".to_string(), 1)])
    );
    let good = report
        .cells
        .iter()
        .find(|c| c.key.starts_with("topo=ring-4/"))
        .unwrap();
    assert!(!good.metrics.contains_key("build_error"));
    assert!(good.metrics["ping_replies"] > 0);
}
