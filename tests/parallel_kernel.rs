//! Workspace-level tests for the intra-scenario parallel kernel: the
//! byte-identity contract (`parallel_cores` must never change a
//! `MatrixReport`, at packet- and flow-level traffic granularity),
//! genuine engagement on a configured topology (not just the serial
//! fallback validating itself), the zero-latency degenerate case, and
//! the recalibrated `expected_cost` model ordering cells the way the
//! wall clock does.

use rf_core::scenario::{
    FaultSchedule, MatrixKnob, MatrixSpec, Scenario, ScenarioMatrix, Workload,
};
use rf_core::traffic::{FlowSize, TrafficSpec};
use rf_sim::{LinkProfile, ParallelOutcome, Time, TraceLevel};
use rf_topo::ring;
use std::time::Duration;

/// One ring-8 traffic cell: a fixed-size incast whose senders start on
/// a fixed cadence, so the offered load is deterministic and the
/// post-convergence span is long enough (tens of simulated seconds)
/// for the parallel kernel to engage.
fn traffic_cell(knob: MatrixKnob) -> MatrixSpec {
    MatrixSpec {
        seeds: vec![7],
        topologies: vec!["ring-8".into()],
        schedules: vec![FaultSchedule::none()],
        knobs: vec![knob],
        configure_deadline: Duration::from_secs(90),
        post_fault_window: Duration::from_secs(12),
        settle: Duration::from_secs(5),
    }
}

fn incast(flow_level: bool) -> TrafficSpec {
    let spec = TrafficSpec::incast(3, FlowSize::fixed(60_000), Duration::from_secs(2), 4)
        .window(Duration::from_secs(20), Duration::from_secs(10));
    if flow_level {
        spec.flow_level()
    } else {
        spec
    }
}

#[test]
fn parallel_cores_never_change_report_bytes_at_either_granularity() {
    // THE contract of the parallel-kernel tentpole, at the artifact
    // level: a packet-level and a flow-level traffic cell, each run
    // with 1, 2 and 4 granted cores, must emit byte-identical
    // MatrixReport JSON. `parallel_cores` is deliberately absent from
    // the cell key, so any divergence shows up as a content diff.
    for (name, flow_level) in [("incast3p", false), ("incast3f", true)] {
        let knob = MatrixKnob::fast(name).with_traffic(incast(flow_level));
        let baseline = ScenarioMatrix::new(traffic_cell(knob.clone().with_parallel_cores(1)))
            .run(1)
            .to_json();
        for cores in [2, 4] {
            let report = ScenarioMatrix::new(traffic_cell(knob.clone().with_parallel_cores(cores)))
                .run(1)
                .to_json();
            assert_eq!(
                report, baseline,
                "knob {name}: report with parallel_cores={cores} must be \
                 byte-identical to the sequential report"
            );
        }
    }
}

/// A ring-8 scenario pair — one sequential, one with the parallel
/// kernel granted `cores` regions — stepped identically through
/// convergence and a long post-convergence span.
fn scenario_pair(cores: usize, profile: Option<LinkProfile>) -> (Scenario, Scenario) {
    let build = |cores: usize| {
        let mut b = Scenario::on(ring(8))
            .fast_timers()
            .seed(9)
            .trace_level(TraceLevel::Off)
            .with_workload(Workload::ping(0, 4))
            .parallel_cores(cores);
        if let Some(p) = profile {
            b = b.link_profile(p);
        }
        b.start()
    };
    (build(1), build(cores))
}

#[test]
fn parallel_kernel_genuinely_engages_after_convergence() {
    // Guard against the identity tests above proving nothing: if every
    // span fell back to sequential execution, they would pass
    // vacuously. On a configured ring-8 the partitioner must find >= 2
    // dataplane regions and the span must actually run windowed.
    let (mut serial, mut parallel) = scenario_pair(4, None);
    for sc in [&mut serial, &mut parallel] {
        let configured = sc.run_until_configured(Time::from_secs(60));
        let at = configured.expect("ring-8 must configure under fast timers");
        sc.run_until(at + Duration::from_secs(15));
    }
    match parallel.last_parallel {
        Some(ParallelOutcome::Parallel {
            regions, windows, ..
        }) => {
            assert!(regions >= 2, "partition must split the dataplane");
            assert!(windows >= 1, "the span must advance in windows");
        }
        other => panic!("parallel kernel must engage, got {other:?}"),
    }
    assert!(serial.last_parallel.is_none(), "1 core must stay serial");
    // Same world afterwards: metrics and every workload report agree.
    assert_eq!(
        format!("{:?}", serial.workload_reports()),
        format!("{:?}", parallel.workload_reports()),
    );
    assert_eq!(
        format!("{:?}", serial.finish()),
        format!("{:?}", parallel.finish()),
    );
}

#[test]
fn zero_latency_links_merge_endpoints_into_fewer_regions() {
    // Endpoints joined by a zero-latency link give the kernel no
    // lookahead, so the partitioner must merge them into one region.
    // With every *link* at zero latency the whole physical fabric
    // collapses to a single region; what keeps the run parallel at
    // all is the control plane's positive-latency streams, which
    // still separate the physical world from the VM world. The
    // region count must therefore drop versus the default-latency
    // partition — and the merged run must leave identical state.
    let regions_of = |sc: &Scenario| match sc.last_parallel {
        Some(ParallelOutcome::Parallel { regions, .. }) => regions,
        ref other => panic!("expected engagement, got {other:?}"),
    };
    let span = |sc: &mut Scenario| {
        let configured = sc.run_until_configured(Time::from_secs(60));
        let at = configured.expect("ring-8 must configure");
        sc.run_until(at + Duration::from_secs(10));
    };
    let (_, mut default_par) = scenario_pair(4, None);
    span(&mut default_par);
    let zero = LinkProfile::with_latency(Duration::ZERO);
    let (mut serial, mut parallel) = scenario_pair(4, Some(zero));
    span(&mut serial);
    span(&mut parallel);
    assert!(
        regions_of(&parallel) < regions_of(&default_par),
        "zero-latency links must merge dataplane regions ({} vs {})",
        regions_of(&parallel),
        regions_of(&default_par),
    );
    assert_eq!(
        format!("{:?}", serial.finish()),
        format!("{:?}", parallel.finish()),
    );
}

#[test]
fn expected_cost_orders_cells_like_the_wall_clock() {
    // The scheduler sorts cells by `expected_cost` so the costliest
    // start first (and attract the spare-core budget). The model needs
    // no precision, but its *ordering* must track reality: a 16-switch
    // grid must be predicted and measured costlier than a 4-ring.
    let spec = MatrixSpec {
        seeds: vec![1],
        topologies: vec!["ring-4".into(), "grid-4x4".into()],
        schedules: vec![FaultSchedule::none()],
        knobs: vec![MatrixKnob::fast("fast")],
        configure_deadline: Duration::from_secs(120),
        post_fault_window: Duration::from_secs(10),
        settle: Duration::from_secs(5),
    };
    let matrix = ScenarioMatrix::new(spec.clone());
    let mut cells = spec.cells();
    cells.sort_by_key(|c| matrix.expected_cell_cost(c));
    let (cheap, costly) = (cells.first().unwrap(), cells.last().unwrap());
    assert!(cheap.key().contains("topo=ring-4"), "{}", cheap.key());
    assert!(costly.key().contains("topo=grid-4x4"), "{}", costly.key());
    let (_, stats) = matrix.run_instrumented(1, ScenarioMatrix::standard_builder);
    let wall_of = |key: &str| {
        stats
            .cells
            .iter()
            .find(|s| s.key == key)
            .expect("stat per cell")
            .wall
    };
    assert!(
        wall_of(&costly.key()) > wall_of(&cheap.key()),
        "predicted-costliest cell must also measure slower \
         ({:?} vs {:?})",
        wall_of(&costly.key()),
        wall_of(&cheap.key()),
    );
}
