//! Property-based tests (proptest) on the load-bearing codecs and data
//! structures: decoders must never panic, encode∘decode must be
//! identity, matching must respect the wildcard algebra, and the RIB
//! must keep its best-route invariant under arbitrary operation
//! sequences.

use bytes::Bytes;
use proptest::prelude::*;
use rf_openflow::{Action, OfMatch, OfMessage, PacketKey, Wildcards};
use rf_routed::rib::{Rib, Route, RouteProto};
use rf_wire::{
    internet_checksum, ArpPacket, EthernetFrame, Ipv4Cidr, Ipv4Packet, LldpPacket, MacAddr,
    UdpPacket,
};
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    // ---------------- decoders never panic ----------------

    #[test]
    fn of_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = OfMessage::decode(&data);
    }

    #[test]
    fn wire_parsers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = EthernetFrame::parse(&data);
        let _ = Ipv4Packet::parse(&data);
        let _ = ArpPacket::parse(&data);
        let _ = LldpPacket::parse(&data);
        let _ = rf_routed::ospf::packet::OspfPacket::parse(&data);
        let _ = rf_routed::rip::RipPacket::parse(&data);
    }

    #[test]
    fn rpc_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = rf_rpc::decode_envelope(&data);
        let _ = rf_vnet::rfproto::RfMessage::decode(&data);
    }

    // ---------------- roundtrips ----------------

    #[test]
    fn ethernet_roundtrip(
        dst in arb_mac(),
        src in arb_mac(),
        ethertype in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 46..200),
    ) {
        let f = EthernetFrame::new(dst, src, rf_wire::EtherType(ethertype), Bytes::from(payload));
        let parsed = EthernetFrame::parse(&f.emit()).unwrap();
        prop_assert_eq!(parsed, f);
    }

    #[test]
    fn ipv4_roundtrip_and_checksum(
        src in arb_ip(),
        dst in arb_ip(),
        proto in any::<u8>(),
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut p = Ipv4Packet::new(src, dst, rf_wire::IpProtocol(proto), Bytes::from(payload));
        p.ttl = ttl;
        let wire = p.emit();
        prop_assert_eq!(internet_checksum(&wire[..20]), 0);
        let parsed = Ipv4Packet::parse(&wire).unwrap();
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn udp_roundtrip(
        src in arb_ip(),
        dst in arb_ip(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let u = UdpPacket::new(sp, dp, Bytes::from(payload));
        let parsed = UdpPacket::parse(&u.emit(src, dst), src, dst).unwrap();
        prop_assert_eq!(parsed, u);
    }

    #[test]
    fn lldp_discovery_roundtrip(dpid in any::<u64>(), port in any::<u16>()) {
        let p = LldpPacket::discovery_probe(dpid, port);
        let parsed = LldpPacket::parse(&p.emit()).unwrap();
        prop_assert_eq!(parsed.decode_discovery(), Some((dpid, port)));
    }

    #[test]
    fn of_match_roundtrip(
        wildcards in 0u32..(1 << 22),
        in_port in any::<u16>(),
        dl_src in arb_mac(),
        dl_dst in arb_mac(),
        dl_type in any::<u16>(),
        nw_src in arb_ip(),
        nw_dst in arb_ip(),
        tp in any::<(u16, u16)>(),
    ) {
        let m = OfMatch {
            wildcards: Wildcards(wildcards),
            in_port,
            dl_src,
            dl_dst,
            dl_vlan: 0xFFFF,
            dl_vlan_pcp: 0,
            dl_type,
            nw_tos: 0,
            nw_proto: 0,
            nw_src,
            nw_dst,
            tp_src: tp.0,
            tp_dst: tp.1,
        };
        let mut buf = bytes::BytesMut::new();
        m.emit_into(&mut buf);
        prop_assert_eq!(OfMatch::parse(&buf).unwrap(), m);
    }

    #[test]
    fn of_actions_roundtrip(port in 1u16..1000, mac in arb_mac(), ip in arb_ip()) {
        let actions = vec![
            Action::SetDlSrc(mac),
            Action::SetDlDst(mac),
            Action::SetNwDst(ip),
            Action::output(port),
        ];
        let mut buf = bytes::BytesMut::new();
        Action::emit_list(&actions, &mut buf);
        prop_assert_eq!(Action::parse_list(&buf).unwrap(), actions);
    }

    // ---------------- semantic invariants ----------------

    /// A /n prefix match covers exactly the addresses whose top n bits
    /// agree.
    #[test]
    fn prefix_match_semantics(net in arb_ip(), len in 0u8..=32, probe in arb_ip()) {
        let m = OfMatch::ipv4_dst_prefix(net, len);
        let key = PacketKey {
            in_port: 1,
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_type: 0x0800,
            nw_tos: 0,
            nw_proto: 17,
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: probe,
            tp_src: 0,
            tp_dst: 0,
        };
        let cidr = Ipv4Cidr::new(net, len);
        prop_assert_eq!(m.matches(&key), cidr.contains(probe));
    }

    /// A narrower prefix is always a subset of a wider one on the same
    /// network.
    #[test]
    fn subset_reflexive_and_monotone(net in arb_ip(), len in 1u8..=32) {
        let narrow = OfMatch::ipv4_dst_prefix(net, len);
        let wide = OfMatch::ipv4_dst_prefix(net, len - 1);
        prop_assert!(narrow.is_subset_of(&narrow));
        prop_assert!(narrow.is_subset_of(&wide));
        prop_assert!(narrow.is_subset_of(&OfMatch::any()));
    }

    /// LSA checksums verify after arbitrary aging and break on body
    /// corruption.
    #[test]
    fn lsa_checksum_invariants(
        adv in any::<u32>(),
        links in proptest::collection::vec((any::<u32>(), any::<u32>(), 1u16..100), 0..8),
        age in 0u16..3600,
        // Flip within ls_id/adv_router/seq — fields that survive the
        // parse→re-emit roundtrip (flags/pad bytes are normalized away
        // by owned-struct parsing and cannot carry corruption).
        flip_byte in 4usize..16,
    ) {
        use rf_routed::ospf::lsa::{Lsa, RouterLink, RouterLinkType, INITIAL_SEQ};
        let links: Vec<RouterLink> = links
            .into_iter()
            .map(|(id, data, metric)| RouterLink {
                link_type: RouterLinkType::Stub,
                link_id: id,
                link_data: data,
                metric,
            })
            .collect();
        let has_links = !links.is_empty();
        let lsa = Lsa::router(adv, INITIAL_SEQ, 0, links);
        prop_assert!(lsa.with_age(age).checksum_ok());
        if has_links {
            let mut buf = bytes::BytesMut::new();
            lsa.emit_into(&mut buf);
            if flip_byte < buf.len() {
                buf[flip_byte] ^= 0x5A;
                if let Ok((parsed, _)) = Lsa::parse(&buf) {
                    prop_assert!(!parsed.checksum_ok());
                }
            }
        }
    }

    /// The RIB always installs the lowest (distance, metric) candidate,
    /// no matter the operation order.
    #[test]
    fn rib_best_route_invariant(ops in proptest::collection::vec(
        (0u8..3, 0u8..4, 1u32..100), 1..40,
    )) {
        let protos = [
            RouteProto::Connected,
            RouteProto::Static,
            RouteProto::Ospf,
            RouteProto::Rip,
        ];
        let prefix: Ipv4Cidr = "10.5.0.0/16".parse().unwrap();
        let mut rib = Rib::new();
        let mut model: std::collections::HashMap<RouteProto, u32> = Default::default();
        for (op, p, metric) in ops {
            let proto = protos[p as usize];
            match op {
                0 | 2 => {
                    rib.add(Route {
                        prefix,
                        next_hop: Some(Ipv4Addr::new(1, 1, 1, 1)),
                        out_iface: 1,
                        proto,
                        metric,
                    });
                    model.insert(proto, metric);
                }
                _ => {
                    rib.remove(prefix, proto);
                    model.remove(&proto);
                }
            }
            let expected = model
                .iter()
                .min_by_key(|(pr, m)| (pr.admin_distance(), **m))
                .map(|(pr, _)| *pr);
            let got = rib.lookup(Ipv4Addr::new(10, 5, 1, 1)).map(|r| r.proto);
            prop_assert_eq!(got, expected);
        }
    }
}
