//! Workspace tests for the stochastic traffic engine: the determinism
//! contract over stochastic cells (identical `MatrixReport` bytes at
//! any worker-thread count), seed behaviour (same seed reproduces the
//! exact report, different seeds diverge), flow-level vs packet-level
//! agreement on small topologies, and the typed builder errors that
//! replace the old workload `assert!`s.

use rf_core::scenario::{
    FaultSchedule, MatrixKnob, MatrixSpec, Scenario, ScenarioMatrix, Workload, WorkloadReport,
};
use rf_core::traffic::{FlowSize, TrafficReport, TrafficSpec, WorkloadError};
use rf_sim::{LinkProfile, Time};
use rf_topo::{ring, star, Topology};
use std::time::Duration;

/// 20 Mbps access links: one 1098-byte data chunk serializes in
/// ~439 µs, so congestion — not propagation — dominates flow timing.
/// That is the regime where the fluid model's max-min share is the
/// interesting claim to check against the packet-level truth.
fn slow_links() -> LinkProfile {
    LinkProfile {
        bandwidth_bps: 20_000_000,
        ..LinkProfile::default()
    }
}

/// Run `spec` as the sole workload on `topo` and harvest its report.
fn run_traffic(
    topo: Topology,
    seed: u64,
    spec: &TrafficSpec,
    profile: LinkProfile,
) -> TrafficReport {
    let cfg = spec.instantiate(&topo).expect("spec fits the topology");
    let mut sc = Scenario::on(topo)
        .fast_timers()
        .seed(seed)
        .trace_level(rf_sim::TraceLevel::Off)
        .link_profile(profile)
        .with_workload(Workload::traffic(cfg).expect("validated config"))
        .start();
    sc.run_until(Time::ZERO + spec.stop_at() + Duration::from_secs(2));
    let reports = sc.workload_reports();
    let WorkloadReport::Traffic(r) = &reports[0] else {
        unreachable!("traffic workload attached above");
    };
    r.clone()
}

fn pct_diff(a: u64, b: u64) -> f64 {
    if a == 0 && b == 0 {
        return 0.0;
    }
    (a as f64 - b as f64).abs() / (a.max(b) as f64) * 100.0
}

#[test]
fn same_seed_reproduces_different_seed_diverges() {
    let spec = TrafficSpec::poisson(3, 6.0, FlowSize::pareto(2_000, 100_000))
        .window(Duration::from_secs(25), Duration::from_secs(10));
    let a = run_traffic(ring(4), 5, &spec, LinkProfile::default());
    let b = run_traffic(ring(4), 5, &spec, LinkProfile::default());
    assert_eq!(a, b, "same seed must reproduce the exact report");
    assert!(a.flows_started > 0, "poisson arrivals must fire");
    assert_eq!(a.frames_lost(), 0, "reliable links lose nothing");

    let c = run_traffic(ring(4), 6, &spec, LinkProfile::default());
    assert_ne!(
        a, c,
        "a different seed must draw different arrivals and sizes"
    );
}

#[test]
fn flow_level_matches_packet_level_incast_on_ring() {
    // Four synchronized waves of 3 senders × 60 KB onto one receiver:
    // the receiver's 20 Mbps access link is the bottleneck in both
    // models. Offered load is guaranteed identical (same WaveStream),
    // so the check is delivery and completion timing.
    let spec = TrafficSpec::incast(3, FlowSize::fixed(60_000), Duration::from_secs(2), 4)
        .window(Duration::from_secs(25), Duration::from_secs(10));
    let pkt = run_traffic(ring(4), 7, &spec, slow_links());
    let flow = run_traffic(ring(4), 7, &spec.clone().flow_level(), slow_links());

    eprintln!("incast pkt:  {pkt:?}");
    eprintln!("incast flow: {flow:?}");
    assert_eq!(pkt.offered_bytes, flow.offered_bytes, "same demand stream");
    assert_eq!(pkt.flows_started, flow.flows_started);
    assert_eq!(pkt.flows_completed, flow.flows_completed);
    let d = pct_diff(pkt.delivered_bytes, flow.delivered_bytes);
    assert!(d <= 10.0, "delivered bytes differ by {d:.1}% (> 10%)");
    let p50 = pct_diff(
        pkt.fct_percentile(50).unwrap().as_nanos() as u64,
        flow.fct_percentile(50).unwrap().as_nanos() as u64,
    );
    assert!(p50 <= 25.0, "FCT p50 differs by {p50:.1}% (> 25%)");
    let p95 = pct_diff(
        pkt.fct_percentile(95).unwrap().as_nanos() as u64,
        flow.fct_percentile(95).unwrap().as_nanos() as u64,
    );
    assert!(p95 <= 25.0, "FCT p95 differs by {p95:.1}% (> 25%)");
}

#[test]
fn flow_level_matches_packet_level_request_response_on_star() {
    // Poisson request/response against the hub-adjacent far leaf: the
    // server's tx access link serializes every response. Moderate
    // utilization (~25%), so flows mostly run alone — the fluid FCT
    // should track the packet-level store-and-forward pipeline.
    let spec = TrafficSpec::poisson(3, 5.0, FlowSize::fixed(40_000))
        .window(Duration::from_secs(25), Duration::from_secs(10));
    let pkt = run_traffic(star(5), 11, &spec, slow_links());
    let flow = run_traffic(star(5), 11, &spec.clone().flow_level(), slow_links());

    eprintln!("rr pkt:  {pkt:?}");
    eprintln!("rr flow: {flow:?}");
    assert_eq!(pkt.offered_bytes, flow.offered_bytes, "same demand stream");
    assert_eq!(pkt.flows_started, flow.flows_started);
    let d = pct_diff(pkt.delivered_bytes, flow.delivered_bytes);
    assert!(d <= 10.0, "delivered bytes differ by {d:.1}% (> 10%)");
    let p50 = pct_diff(
        pkt.fct_percentile(50).unwrap().as_nanos() as u64,
        flow.fct_percentile(50).unwrap().as_nanos() as u64,
    );
    assert!(p50 <= 25.0, "FCT p50 differs by {p50:.1}% (> 25%)");
}

/// A small stochastic grid mixing packet and flow cells across every
/// pattern family — the determinism contract must hold with PRNG-driven
/// workloads exactly as it does for the deterministic ping cells.
fn stochastic_spec() -> MatrixSpec {
    let window = (Duration::from_secs(25), Duration::from_secs(8));
    MatrixSpec {
        seeds: vec![3],
        topologies: vec!["ring-4".into()],
        schedules: vec![FaultSchedule::none()],
        knobs: vec![
            MatrixKnob::fast("rr-pkt").with_traffic(
                TrafficSpec::poisson(2, 4.0, FlowSize::pareto(2_000, 60_000))
                    .window(window.0, window.1),
            ),
            MatrixKnob::fast("incast-flow").with_traffic(
                TrafficSpec::incast(3, FlowSize::fixed(50_000), Duration::from_secs(2), 3)
                    .flow_level()
                    .window(window.0, window.1),
            ),
            MatrixKnob::fast("mcast-pkt")
                .with_traffic(TrafficSpec::multicast(3, 1_000_000).window(window.0, window.1)),
            MatrixKnob::fast("mcast-flow").with_traffic(
                TrafficSpec::multicast(3, 1_000_000)
                    .flow_level()
                    .window(window.0, window.1),
            ),
        ],
        configure_deadline: Duration::from_secs(60),
        post_fault_window: Duration::ZERO,
        settle: Duration::from_secs(5),
    }
}

#[test]
fn stochastic_matrix_bytes_identical_across_worker_counts() {
    let matrix = ScenarioMatrix::new(stochastic_spec());
    let one = matrix.run(1).to_json();
    let four = matrix.run(4).to_json();
    let eight = matrix.run(8).to_json();
    assert_eq!(one, four, "1-thread and 4-thread reports must match");
    assert_eq!(four, eight, "4-thread and 8-thread reports must match");
    // The artifact must actually carry the new metrics, not just agree.
    assert!(one.contains("traffic_delivered_bytes"));
    assert!(one.contains("traffic_fct_p95_ns"));
}

#[test]
fn bad_cell_fails_alone_not_the_sweep() {
    // A fan-in wider than the topology used to assert! inside the
    // worker and poison the whole sweep; now the one cell records
    // build_error and every other cell still reports.
    let spec = MatrixSpec {
        seeds: vec![1],
        topologies: vec!["ring-4".into()],
        schedules: vec![FaultSchedule::none()],
        knobs: vec![
            MatrixKnob::fast("fast"),
            MatrixKnob::fast("fan9").with_fan_in(9),
        ],
        configure_deadline: Duration::from_secs(60),
        post_fault_window: Duration::ZERO,
        settle: Duration::from_secs(5),
    };
    let report = ScenarioMatrix::new(spec).run(2);
    assert_eq!(report.cells.len(), 2);
    let bad = report
        .cells
        .iter()
        .find(|c| c.key.contains("knob=fan9"))
        .expect("failed cell still present");
    assert_eq!(bad.metrics.get("build_error"), Some(&1));
    let good = report
        .cells
        .iter()
        .find(|c| c.key.contains("knob=fast"))
        .expect("good cell present");
    assert!(good.metrics.contains_key("all_configured_ns"));
}

#[test]
fn workload_constructors_return_typed_errors() {
    assert!(matches!(
        Workload::ping_fan_in(vec![], 2),
        Err(WorkloadError::NoEndpoints(_))
    ));
    assert!(matches!(
        Workload::ping_fan_in((0..40).collect(), 41),
        Err(WorkloadError::TooManyEndpoints { given: 40, .. })
    ));

    // Traffic spec errors surface through instantiate/validate instead
    // of panicking mid-sweep.
    assert!(TrafficSpec::poisson(0, 4.0, FlowSize::fixed(1_000))
        .instantiate(&ring(4))
        .is_err());
    assert!(TrafficSpec::poisson(2, 0.0, FlowSize::fixed(1_000))
        .instantiate(&ring(4))
        .is_err());
    assert!(matches!(
        TrafficSpec::multicast(3, 0).instantiate(&ring(4)),
        Err(WorkloadError::ZeroRate(_))
    ));
    let mut one = Topology::new();
    one.add_node("s0", (0.0, 0.0));
    assert!(matches!(
        TrafficSpec::incast(3, FlowSize::fixed(1_000), Duration::from_secs(1), 2).instantiate(&one),
        Err(WorkloadError::TopologyTooSmall { .. })
    ));
}
